(* CDCL with two-watched literals, first-UIP learning, VSIDS + phase
   saving, luby restarts and learnt-DB reduction. Deterministic: VSIDS
   ties break on the lower variable index and nothing consults clocks
   or randomness, so identical call sequences give identical runs. *)

type clause = {
  mutable lits : int array; (* lits.(0) is the implied/asserting literal
                               when the clause is a reason *)
  mutable act : float;
  learnt : bool;
  mutable deleted : bool;
  cid : int; (* creation order; deterministic sort tie-break *)
}

type result = Sat | Unsat | Unknown

type t = {
  mutable nv : int;
  mutable assigns : int array; (* per var: 0 false, 1 true, >=2 unassigned *)
  mutable level : int array;
  mutable reason : clause option array;
  activity : float array ref; (* ref shared with the order heap's closure *)
  mutable polarity : int array; (* saved phase per var *)
  mutable watches : clause Vec.t array; (* per literal *)
  mutable seen : bool array;
  order : Iheap.t;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable n_conflicts : int;
  mutable next_cid : int;
  mutable model : int array;
}

let lit_of_var v = 2 * v
let neg_lit l = l lxor 1
let var_of_lit l = l lsr 1

let create () =
  let activity = ref [||] in
  let better a b =
    let aa = !activity.(a) and ab = !activity.(b) in
    aa > ab || (aa = ab && a < b)
  in
  {
    nv = 0;
    assigns = [||];
    level = [||];
    reason = [||];
    activity;
    polarity = [||];
    watches = [||];
    seen = [||];
    order = Iheap.create ~better;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    clauses = Vec.create ();
    learnts = Vec.create ();
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    n_conflicts = 0;
    next_cid = 0;
    model = [||];
  }

let n_vars s = s.nv

let new_var s =
  let v = s.nv in
  s.nv <- v + 1;
  let cap = Array.length s.assigns in
  if v >= cap then begin
    let ncap = max (v + 1) (max 16 (2 * cap)) in
    let grow a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    s.assigns <- grow s.assigns 2;
    s.level <- grow s.level 0;
    s.reason <- grow s.reason None;
    s.activity := grow !(s.activity) 0.0;
    s.polarity <- grow s.polarity 0;
    s.seen <- grow s.seen false;
    let old_w = s.watches in
    s.watches <-
      Array.init (2 * ncap) (fun i ->
          if i < Array.length old_w then old_w.(i) else Vec.create ())
  end;
  Iheap.insert s.order v;
  v

let lit_value s l =
  let a = s.assigns.(l lsr 1) in
  if a >= 2 then 2 else a lxor (l land 1)

let decision_level s = Vec.length s.trail_lim

(* Precondition: [p] is unassigned. *)
let enqueue s p reason =
  let v = p lsr 1 in
  s.assigns.(v) <- (p land 1) lxor 1;
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  ignore (Vec.push s.trail p)

let propagate s =
  let confl = ref None in
  let no_confl () = match !confl with None -> true | Some _ -> false in
  while no_confl () && s.qhead < Vec.length s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    let false_lit = p lxor 1 in
    let ws = s.watches.(false_lit) in
    let n = Vec.length ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.deleted then begin
        (* Deleted clauses are dropped lazily right here. *)
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if lit_value s first = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          let len = Array.length c.lits in
          let k = ref 2 in
          while !k < len && lit_value s c.lits.(!k) = 0 do
            incr k
          done;
          if !k < len then begin
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- false_lit;
            ignore (Vec.push s.watches.(c.lits.(1)) c)
          end
          else begin
            (* unit under current assignment, or conflicting *)
            Vec.set ws !j c;
            incr j;
            if lit_value s first = 0 then begin
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done;
              s.qhead <- Vec.length s.trail;
              confl := Some c
            end
            else enqueue s first (Some c)
          end
        end
      end
    done;
    for _ = !j to n - 1 do
      ignore (Vec.pop ws)
    done
  done;
  !confl

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    while Vec.length s.trail > bound do
      match Vec.pop s.trail with
      | None -> assert false
      | Some p ->
        let v = p lsr 1 in
        s.polarity.(v) <- s.assigns.(v);
        s.assigns.(v) <- 2;
        s.reason.(v) <- None;
        Iheap.insert s.order v
    done;
    while decision_level s > lvl do
      ignore (Vec.pop s.trail_lim)
    done;
    s.qhead <- bound
  end

let var_decay = 0.95
let clause_decay = 0.999

let bump_var s v =
  let act = !(s.activity) in
  act.(v) <- act.(v) +. s.var_inc;
  if act.(v) > 1e100 then begin
    for i = 0 to s.nv - 1 do
      act.(i) <- act.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Iheap.update s.order v

let bump_clause s c =
  if c.learnt then begin
    c.act <- c.act +. s.cla_inc;
    if c.act > 1e20 then begin
      Vec.iter (fun c -> c.act <- c.act *. 1e-20) s.learnts;
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

let decay_activities s =
  s.var_inc <- s.var_inc /. var_decay;
  s.cla_inc <- s.cla_inc /. clause_decay

(* First-UIP conflict analysis. Returns the learnt clause (asserting
   literal at index 0) and the backtrack level. *)
let analyze s confl =
  let learnt = Vec.create () in
  ignore (Vec.push learnt 0);
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let index = ref (Vec.length s.trail - 1) in
  let btl = ref 0 in
  let dl = decision_level s in
  let looping = ref true in
  while !looping do
    let c = match !confl with Some c -> c | None -> assert false in
    bump_clause s c;
    let start = if !p < 0 then 0 else 1 in
    for jj = start to Array.length c.lits - 1 do
      let q = c.lits.(jj) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= dl then incr path
        else begin
          ignore (Vec.push learnt q);
          if s.level.(v) > !btl then btl := s.level.(v)
        end
      end
    done;
    while not s.seen.((Vec.get s.trail !index) lsr 1) do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    let v = !p lsr 1 in
    confl := s.reason.(v);
    s.seen.(v) <- false;
    decr path;
    if !path <= 0 then looping := false
  done;
  Vec.set learnt 0 (!p lxor 1);
  Vec.iter (fun q -> s.seen.(q lsr 1) <- false) learnt;
  (Vec.to_array learnt, !btl)

(* Attach a learnt clause after backjumping; [lits.(0)] is asserting. *)
let record s lits =
  if Array.length lits = 1 then enqueue s lits.(0) None
  else begin
    (* the second watch must be a highest-level (most recently undone)
       literal so the watch invariant survives future backtracking *)
    let max_i = ref 1 in
    for k = 2 to Array.length lits - 1 do
      if s.level.(lits.(k) lsr 1) > s.level.(lits.(!max_i) lsr 1) then
        max_i := k
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!max_i);
    lits.(!max_i) <- tmp;
    let c =
      { lits; act = 0.0; learnt = true; deleted = false; cid = s.next_cid }
    in
    s.next_cid <- s.next_cid + 1;
    ignore (Vec.push s.watches.(lits.(0)) c);
    ignore (Vec.push s.watches.(lits.(1)) c);
    bump_clause s c;
    ignore (Vec.push s.learnts c);
    enqueue s lits.(0) (Some c)
  end

let add_clause s lits =
  if s.ok then begin
    cancel_until s 0;
    let lits = List.sort_uniq Int.compare lits in
    let taut = List.exists (fun l -> List.mem (l lxor 1) lits) lits in
    let sat_ = List.exists (fun l -> lit_value s l = 1) lits in
    if not (taut || sat_) then begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ p ] -> (
        enqueue s p None;
        match propagate s with
        | Some _ -> s.ok <- false
        | None -> ())
      | _ ->
        let arr = Array.of_list lits in
        let c =
          {
            lits = arr;
            act = 0.0;
            learnt = false;
            deleted = false;
            cid = s.next_cid;
          }
        in
        s.next_cid <- s.next_cid + 1;
        ignore (Vec.push s.watches.(arr.(0)) c);
        ignore (Vec.push s.watches.(arr.(1)) c);
        ignore (Vec.push s.clauses c)
    end
  end

let locked s c =
  Array.length c.lits > 0
  &&
  match s.reason.(c.lits.(0) lsr 1) with
  | Some c' -> c' == c
  | None -> false

(* Drop roughly half the learnt clauses by activity; binary and locked
   (currently-a-reason) clauses survive. Watch lists shed the deleted
   clauses lazily during propagation. *)
let reduce_db s =
  let n = Vec.length s.learnts in
  if n > 1 then begin
    let arr = Vec.to_array s.learnts in
    Array.sort
      (fun a b ->
        if a.act < b.act then -1
        else if a.act > b.act then 1
        else Int.compare a.cid b.cid)
      arr;
    let lim = s.cla_inc /. float_of_int n in
    Vec.clear s.learnts;
    Array.iteri
      (fun i c ->
        let keep = Array.length c.lits <= 2 || locked s c in
        if (not keep) && (2 * i < n || c.act < lim) then c.deleted <- true
        else ignore (Vec.push s.learnts c))
      arr
  end

(* luby 0,1,2,... = 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  let looping = ref true in
  while !looping do
    if !size - 1 = !x then looping := false
    else begin
      size := (!size - 1) / 2;
      decr seq;
      x := !x mod !size
    end
  done;
  1 lsl !seq

let restart_unit = 32

let solve ?(assumptions = []) ?conflict_budget s =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    let assumps = Array.of_list assumptions in
    let budget_left =
      ref (match conflict_budget with None -> max_int | Some b -> b)
    in
    let restart_num = ref 0 in
    let restart_limit = ref (restart_unit * luby 0) in
    let since_restart = ref 0 in
    let max_learnts =
      ref (max 1000.0 (float_of_int (Vec.length s.clauses) /. 3.0))
    in
    let result = ref None in
    let running () = match !result with None -> true | Some _ -> false in
    while running () do
      match propagate s with
      | Some confl ->
        s.n_conflicts <- s.n_conflicts + 1;
        incr since_restart;
        decr budget_left;
        if decision_level s = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end
        else begin
          let lits, btl = analyze s confl in
          cancel_until s btl;
          record s lits;
          decay_activities s;
          if !budget_left <= 0 then result := Some Unknown
        end
      | None ->
        if !since_restart >= !restart_limit then begin
          incr restart_num;
          restart_limit := restart_unit * luby !restart_num;
          since_restart := 0;
          max_learnts := !max_learnts *. 1.1;
          cancel_until s 0
        end
        else begin
          if float_of_int (Vec.length s.learnts) > !max_learnts then
            reduce_db s;
          let dl = decision_level s in
          if dl < Array.length assumps then begin
            let p = assumps.(dl) in
            match lit_value s p with
            | 1 ->
              (* already true: dummy level keeps assumption indexing *)
              ignore (Vec.push s.trail_lim (Vec.length s.trail))
            | 0 -> result := Some Unsat
            | _ ->
              ignore (Vec.push s.trail_lim (Vec.length s.trail));
              enqueue s p None
          end
          else begin
            let rec pick () =
              match Iheap.pop s.order with
              | None -> None
              | Some v -> if s.assigns.(v) >= 2 then Some v else pick ()
            in
            match pick () with
            | None ->
              s.model <- Array.sub s.assigns 0 s.nv;
              result := Some Sat
            | Some v ->
              let p = (2 * v) lor (s.polarity.(v) lxor 1) in
              ignore (Vec.push s.trail_lim (Vec.length s.trail));
              enqueue s p None
          end
        end
    done;
    cancel_until s 0;
    match !result with Some r -> r | None -> assert false
  end

let model_value s l =
  let v = l lsr 1 in
  let a = if v < Array.length s.model then s.model.(v) else 0 in
  a lxor (l land 1) = 1

let conflicts s = s.n_conflicts
let okay s = s.ok
