(** From-scratch CDCL SAT solver.

    The classic architecture: two-watched-literal propagation, first-UIP
    conflict analysis with clause learning, VSIDS variable activities
    with phase saving, luby-series restarts and activity-based learnt
    clause-DB reduction. Everything is deterministic for a fixed
    sequence of [new_var]/[add_clause]/[solve] calls: VSIDS ties break
    on the lower variable index, initial phase is always [false], and
    no randomness or wall-clock input is consulted anywhere.

    Literals are ints: [2*v] is variable [v] positive, [2*v+1] negated
    ({!lit_of_var}, {!neg_lit}). The solver is incremental — clauses
    may be added between [solve] calls and [solve] accepts a list of
    assumption literals that hold for that call only. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val n_vars : t -> int

val lit_of_var : int -> int

val neg_lit : int -> int

val var_of_lit : int -> int

val add_clause : t -> int list -> unit
(** Add a problem clause (list of literals). Tautologies are dropped,
    duplicate and root-level-false literals removed; an empty (or
    root-contradictory) result makes the solver permanently {!Unsat}. *)

val solve : ?assumptions:int list -> ?conflict_budget:int -> t -> result
(** Solve the current clause set. [assumptions] are literals that must
    hold in this call; [Unsat] then means "unsatisfiable under the
    assumptions". [conflict_budget] bounds the number of conflicts in
    this call — on exhaustion the solver returns {!Unknown} (learnt
    clauses are kept, so a later call resumes stronger). *)

val model_value : t -> int -> bool
(** [model_value s l] — value of literal [l] in the model of the last
    [Sat] answer. Only meaningful directly after [solve] returned
    [Sat]. *)

val conflicts : t -> int
(** Total conflicts across all [solve] calls (statistics). *)

val okay : t -> bool
(** [false] once the clause set is unconditionally contradictory. *)
