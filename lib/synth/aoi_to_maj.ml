let cuts_per_node = 8

type cut = { leaves : int array; tt : int }

(* Re-express [tt] (over [old_leaves]) in terms of [new_leaves]
   (a superset, both sorted, |new| <= 3). *)
let expand old_leaves tt new_leaves =
  let n_new = Array.length new_leaves in
  let pos_of leaf =
    let rec find i = if new_leaves.(i) = leaf then i else find (i + 1) in
    find 0
  in
  let map = Array.map pos_of old_leaves in
  let tt' = ref 0 in
  for idx = 0 to (1 lsl n_new) - 1 do
    let old_idx = ref 0 in
    Array.iteri
      (fun old_var new_var ->
        if (idx lsr new_var) land 1 = 1 then old_idx := !old_idx lor (1 lsl old_var))
      map;
    if (tt lsr !old_idx) land 1 = 1 then tt' := !tt' lor (1 lsl idx)
  done;
  !tt'

let merge_leaves a b =
  let seen = Array.to_list a @ Array.to_list b in
  let uniq = List.sort_uniq Int.compare seen in
  if List.length uniq <= 3 then Some (Array.of_list uniq) else None

let apply2 op ta tb = match op with
  | Netlist.And -> ta land tb
  | Netlist.Or -> ta lor tb
  | Netlist.Nand -> lnot (ta land tb) land 255
  | Netlist.Nor -> lnot (ta lor tb) land 255
  | Netlist.Xor -> (ta lxor tb) land 255
  | Netlist.Xnor -> lnot (ta lxor tb) land 255
  | _ -> invalid_arg "apply2"

(* Enumerate up to [cuts_per_node] 3-feasible cuts per node. The
   trivial cut {node} is always kept first so parents can build on it. *)
let enumerate_cuts nl =
  let n = Netlist.size nl in
  let cuts = Array.make n [] in
  let trivial id = { leaves = [| id |]; tt = expand [| 0 |] 0b10 [| 0 |] } in
  (* tt of identity over one var: f(v0) = v0 -> bits 0b10 *)
  let add_cut acc c =
    let key = c.leaves in
    if List.exists (fun c' -> c'.leaves = key && c'.tt = c.tt) acc then acc
    else acc @ [ c ]
  in
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      let base = [ trivial id ] in
      let merged =
        match Netlist.kind nl id with
        | Netlist.Input | Netlist.Const _ -> []
        | Netlist.Output -> []
        | Netlist.Not | Netlist.Buf ->
            let f = (Netlist.fanins nl id).(0) in
            List.filter_map
              (fun c ->
                let nvars = Array.length c.leaves in
                let tt =
                  match Netlist.kind nl id with
                  | Netlist.Not -> lnot c.tt land ((1 lsl (1 lsl nvars)) - 1)
                  | _ -> c.tt
                in
                Some { c with tt })
              cuts.(f)
        | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
        | Netlist.Xnor ->
            let f1 = (Netlist.fanins nl id).(0) and f2 = (Netlist.fanins nl id).(1) in
            let op = Netlist.kind nl id in
            List.concat_map
              (fun c1 ->
                List.filter_map
                  (fun c2 ->
                    match merge_leaves c1.leaves c2.leaves with
                    | None -> None
                    | Some leaves ->
                        let t1 = expand c1.leaves c1.tt leaves in
                        let t2 = expand c2.leaves c2.tt leaves in
                        let mask = (1 lsl (1 lsl Array.length leaves)) - 1 in
                        Some { leaves; tt = apply2 op t1 t2 land mask })
                  cuts.(f2))
              cuts.(f1)
        | Netlist.Maj | Netlist.Splitter _ ->
            invalid_arg "Aoi_to_maj: input must be an AOI netlist"
      in
      let all = List.fold_left add_cut base merged in
      let truncated =
        if List.length all <= cuts_per_node then all
        else
          (* keep the trivial cut plus the widest (most collapsing) cuts *)
          let rest =
            List.tl all
            |> List.stable_sort (fun a b ->
                   Int.compare (Array.length b.leaves) (Array.length a.leaves))
          in
          List.hd all :: List.filteri (fun i _ -> i < cuts_per_node - 1) rest
      in
      cuts.(id) <- truncated)
    order;
  cuts

(* Pad a cut's truth table to 3 variables so Maj_db can be queried.
   Variables beyond the leaf count are don't-cares; we replicate. *)
let tt3_of_cut c =
  let nvars = Array.length c.leaves in
  let tt = ref 0 in
  for idx = 0 to 7 do
    let small = idx land ((1 lsl nvars) - 1) in
    if (c.tt lsr small) land 1 = 1 then tt := !tt lor (1 lsl idx)
  done;
  !tt

type stats = {
  aoi_gates : int;
  maj_gates : int;
  jj_before : int;
  jj_after : int;
}

let convert_with_stats nl =
  let cuts = enumerate_cuts nl in
  let n = Netlist.size nl in
  let fanout = Netlist.fanout_counts nl in
  (* Area-flow mapping: cheapest cover estimate per node. *)
  let af = Array.make n infinity in
  let best_cut = Array.make n None in
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Input | Netlist.Const _ -> af.(id) <- 0.0
      | Netlist.Output -> ()
      | _ ->
          List.iter
            (fun c ->
              if not (Array.length c.leaves = 1 && c.leaves.(0) = id) then begin
                let gate_cost = float_of_int (Maj_db.cost (tt3_of_cut c)) in
                let leaf_cost =
                  Array.fold_left
                    (fun acc leaf ->
                      acc +. (af.(leaf) /. float_of_int (max 1 fanout.(leaf))))
                    0.0 c.leaves
                in
                let total = gate_cost +. leaf_cost in
                if total < af.(id) then begin
                  af.(id) <- total;
                  best_cut.(id) <- Some c
                end
              end)
            cuts.(id))
    order;
  (* Realization with structural hashing. *)
  let out = Netlist.create () in
  let memo = Array.make n (-1) in
  (* all primary inputs exist in the result, in the original order,
     even if the mapped logic no longer reads some of them *)
  List.iter
    (fun iid ->
      memo.(iid) <- Netlist.add out ?name:(Netlist.name nl iid) Netlist.Input [||])
    (Netlist.inputs nl);
  let hash : (Netlist.kind * int list, int) Hashtbl.t = Hashtbl.create 256 in
  let hashed kind fanins =
    let key_fanins =
      match kind with
      | Netlist.And | Netlist.Or | Netlist.Maj -> List.sort Int.compare fanins
      | _ -> fanins
    in
    match Hashtbl.find_opt hash (kind, key_fanins) with
    | Some id -> id
    | None ->
        let id = Netlist.add out kind (Array.of_list fanins) in
        Hashtbl.replace hash (kind, key_fanins) id;
        id
  in
  let hashed_not id =
    (* collapse double negation *)
    if Netlist.kind out id = Netlist.Not then (Netlist.fanins out id).(0)
    else hashed Netlist.Not [ id ]
  in
  let hashed_const b = hashed (Netlist.Const b) [] in
  let rec realize id =
    if memo.(id) >= 0 then memo.(id)
    else begin
      let result =
        match Netlist.kind nl id with
        | Netlist.Input ->
            Netlist.add out ?name:(Netlist.name nl id) Netlist.Input [||]
        | Netlist.Const b -> hashed_const b
        | Netlist.Output -> assert false
        | _ ->
            let c = Option.get best_cut.(id) in
            let leaf_ids = Array.map realize c.leaves in
            instantiate (Maj_db.lookup (tt3_of_cut c)) leaf_ids
      in
      memo.(id) <- result;
      result
    end
  and instantiate impl leaf_ids =
    let n_leaves = Array.length leaf_ids in
    let gate_ids = Array.make (Array.length impl.Maj_db.gates) (-1) in
    (* Resolve an operand to either a concrete signal or a constant. *)
    let resolve op =
      match op with
      | Maj_db.Cst b -> `Cst b
      | Maj_db.Var (k, neg) ->
          if k >= n_leaves then `Cst neg (* don't-care input: feed a constant *)
          else if neg then `Sig (hashed_not leaf_ids.(k))
          else `Sig leaf_ids.(k)
      | Maj_db.Gate (i, neg) ->
          let g = gate_ids.(i) in
          if neg then `Sig (hashed_not g) else `Sig g
    in
    let build_maj ra rb rc =
      let consts = List.filter_map (function `Cst b -> Some b | `Sig _ -> None) [ ra; rb; rc ] in
      let sigs = List.filter_map (function `Sig s -> Some s | `Cst _ -> None) [ ra; rb; rc ] in
      match (consts, sigs) with
      | [], [ a; b; c ] ->
          if a = b then a
          else if a = c then a
          else if b = c then b
          else hashed Netlist.Maj [ a; b; c ]
      | [ k ], [ a; b ] ->
          if a = b then a
          else if k then hashed Netlist.Or [ a; b ]
          else hashed Netlist.And [ a; b ]
      | [ k1; k2 ], [ a ] -> if k1 = k2 then hashed_const k1 else a
      | [ k1; k2; k3 ], [] ->
          let majority = (k1 && k2) || (k1 && k3) || (k2 && k3) in
          hashed_const majority
      | _ -> assert false
    in
    Array.iteri
      (fun i g ->
        gate_ids.(i) <-
          build_maj (resolve g.Maj_db.a) (resolve g.Maj_db.b) (resolve g.Maj_db.c))
      impl.Maj_db.gates;
    match resolve impl.Maj_db.out with
    | `Sig s -> s
    | `Cst b -> hashed_const b
  in
  List.iter
    (fun oid ->
      let driver = realize (Netlist.fanins nl oid).(0) in
      ignore (Netlist.add out ?name:(Netlist.name nl oid) Netlist.Output [| driver |]))
    (Netlist.outputs nl);
  let is_gate = function
    | Netlist.Input | Netlist.Output | Netlist.Const _ -> false
    | _ -> true
  in
  (* jj_before: cost of mapping every AOI gate individually. *)
  let jj_before =
    Netlist.fold nl
      (fun acc nd ->
        match nd.Netlist.kind with
        | Netlist.And | Netlist.Or -> acc + 6
        | Netlist.Nand | Netlist.Nor -> acc + 8
        | Netlist.Xor | Netlist.Xnor ->
            acc + Maj_db.cost (tt3_of_cut { leaves = [| 0; 1 |]; tt = 0b0110 })
        | Netlist.Not | Netlist.Buf -> acc + 2
        | _ -> acc)
      0
  in
  let jj_after = Cell.netlist_jj_count out in
  let stats =
    {
      aoi_gates = Netlist.count_kind nl is_gate;
      maj_gates = Netlist.count_kind out is_gate;
      jj_before;
      jj_after;
    }
  in
  (out, stats)

(* Per-gate mapping: realize each AOI gate from the database entry of
   its own 2-input function — no cut enumeration, no collapsing. *)
let convert_naive nl =
  let out = Netlist.create () in
  let memo = Array.make (Netlist.size nl) (-1) in
  let hash : (Netlist.kind * int list, int) Hashtbl.t = Hashtbl.create 256 in
  let hashed kind fanins =
    let key =
      match kind with
      | Netlist.And | Netlist.Or | Netlist.Maj -> (kind, List.sort Int.compare fanins)
      | _ -> (kind, fanins)
    in
    match Hashtbl.find_opt hash key with
    | Some id -> id
    | None ->
        let id = Netlist.add out kind (Array.of_list fanins) in
        Hashtbl.replace hash key id;
        id
  in
  let hashed_not id =
    if Netlist.kind out id = Netlist.Not then (Netlist.fanins out id).(0)
    else hashed Netlist.Not [ id ]
  in
  let gate_tt = function
    | Netlist.And -> 0b1000
    | Netlist.Or -> 0b1110
    | Netlist.Nand -> 0b0111
    | Netlist.Nor -> 0b0001
    | Netlist.Xor -> 0b0110
    | Netlist.Xnor -> 0b1001
    | _ -> invalid_arg "gate_tt"
  in
  List.iter
    (fun iid ->
      memo.(iid) <- Netlist.add out ?name:(Netlist.name nl iid) Netlist.Input [||])
    (Netlist.inputs nl);
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      if memo.(id) < 0 then
        let f k = memo.((Netlist.fanins nl id).(k)) in
        let result =
          match Netlist.kind nl id with
          | Netlist.Input -> memo.(id)
          | Netlist.Output -> -1
          | Netlist.Const b -> hashed (Netlist.Const b) []
          | Netlist.Buf -> f 0
          | Netlist.Not -> hashed_not (f 0)
          | (Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
            | Netlist.Xnor) as k ->
              (* 2-var function padded to the 3-var database *)
              let tt2 = gate_tt k in
              let tt3 = tt2 lor (tt2 lsl 4) in
              let impl = Maj_db.lookup tt3 in
              let leaf_ids = [| f 0; f 1 |] in
              let gate_ids = Array.make (Array.length impl.Maj_db.gates) (-1) in
              let resolve = function
                | Maj_db.Cst b -> `Cst b
                | Maj_db.Var (k, neg) ->
                    if k >= 2 then `Cst neg
                    else if neg then `Sig (hashed_not leaf_ids.(k))
                    else `Sig leaf_ids.(k)
                | Maj_db.Gate (i, neg) ->
                    if neg then `Sig (hashed_not gate_ids.(i)) else `Sig gate_ids.(i)
              in
              let build ra rb rc =
                let consts =
                  List.filter_map (function `Cst b -> Some b | `Sig _ -> None)
                    [ ra; rb; rc ]
                in
                let sigs =
                  List.filter_map (function `Sig s -> Some s | `Cst _ -> None)
                    [ ra; rb; rc ]
                in
                match (consts, sigs) with
                | [], [ a; b; c ] ->
                    if a = b then a
                    else if a = c then a
                    else if b = c then b
                    else hashed Netlist.Maj [ a; b; c ]
                | [ kb ], [ a; b ] ->
                    if a = b then a
                    else if kb then hashed Netlist.Or [ a; b ]
                    else hashed Netlist.And [ a; b ]
                | [ k1; k2 ], [ a ] -> if k1 = k2 then hashed (Netlist.Const k1) [] else a
                | [ k1; k2; k3 ], [] ->
                    hashed (Netlist.Const ((k1 && k2) || (k1 && k3) || (k2 && k3))) []
                | _ -> assert false
              in
              Array.iteri
                (fun i g ->
                  gate_ids.(i) <-
                    build (resolve g.Maj_db.a) (resolve g.Maj_db.b) (resolve g.Maj_db.c))
                impl.Maj_db.gates;
              (match resolve impl.Maj_db.out with
              | `Sig s -> s
              | `Cst b -> hashed (Netlist.Const b) [])
          | Netlist.Maj | Netlist.Splitter _ ->
              invalid_arg "Aoi_to_maj.convert_naive: input must be AOI"
        in
        memo.(id) <- result)
    order;
  List.iter
    (fun oid ->
      let driver = memo.((Netlist.fanins nl oid).(0)) in
      ignore (Netlist.add out ?name:(Netlist.name nl oid) Netlist.Output [| driver |]))
    (Netlist.outputs nl);
  out

(* Cut collapsing can occasionally lose to per-gate mapping on heavily
   shared logic (a collapsed cut re-synthesizes internal nodes that
   other cuts also need). Keeping the cheaper of the two per design
   makes the "most resource-efficient mapping" selection global. *)
let convert nl =
  let smart, _ = convert_with_stats nl in
  let naive = convert_naive nl in
  if Cell.netlist_jj_count naive < Cell.netlist_jj_count smart then naive
  else smart
