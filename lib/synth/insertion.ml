type stats = {
  splitters : int;
  buffers : int;
  delay : int;
  jj : int;
  nets : int;
}

let count_nets nl =
  Netlist.fold nl (fun acc nd -> acc + Array.length nd.Netlist.fanins) 0

(* Split [consumers] (a list of (node, fanin-index) edges fed by
   [src]) into a balanced splitter tree rooted at [src]. *)
let build_splitter_tree ?(max_arity = Cell.max_splitter_outputs) nl src consumers =
  let rec attach src consumers =
    match consumers with
    | [] -> assert false
    | [ (node, idx) ] ->
        let fanins = Array.copy (Netlist.fanins nl node) in
        fanins.(idx) <- src;
        Netlist.set_fanins nl node fanins
    | _ ->
        let k = List.length consumers in
        let ways = min max_arity k in
        let spl = Netlist.add nl (Netlist.Splitter ways) [| src |] in
        (* distribute consumers into [ways] near-equal groups *)
        let groups = Array.make ways [] in
        List.iteri (fun i c -> groups.(i mod ways) <- c :: groups.(i mod ways)) consumers;
        Array.iter (fun g -> attach spl (List.rev g)) groups
  in
  attach src consumers

let insert_with_stats ?max_arity input =
  let nl = Netlist.copy input in
  let n_original = Netlist.size nl in
  (* 1. Splitter insertion, sources in topological order. Consumer
     lists are computed against the original nodes; splitters added on
     the fly only ever have their intended consumers. *)
  let consumers_of = Array.make n_original [] in
  Netlist.iter nl (fun nd ->
      if nd.Netlist.id < n_original then
        Array.iteri
          (fun idx f ->
            if f < n_original then
              consumers_of.(f) <- (nd.Netlist.id, idx) :: consumers_of.(f))
          nd.Netlist.fanins);
  for src = 0 to n_original - 1 do
    let consumers = List.rev consumers_of.(src) in
    if List.length consumers >= 2 then build_splitter_tree ?max_arity nl src consumers
  done;
  let splitters = Netlist.size nl - n_original in
  (* 2. Levelize, then break every multi-phase connection with a
     buffer chain. *)
  let max_phase = ref (Netlist.levelize nl) in
  let pending = ref [] in
  Netlist.iter nl (fun nd ->
      match nd.Netlist.kind with
      | Netlist.Input | Netlist.Const _ | Netlist.Output -> ()
      | _ ->
          Array.iteri
            (fun idx f ->
              let gap = nd.Netlist.phase - Netlist.phase nl f in
              if gap > 1 then pending := (nd.Netlist.id, idx, f, gap) :: !pending)
            nd.Netlist.fanins);
  let buffers = ref 0 in
  let add_chain src gap =
    (* a chain of [gap] buffers following [src]'s phase *)
    let cur = ref src in
    for step = 1 to gap do
      let b = Netlist.add nl Netlist.Buf [| !cur |] in
      Netlist.set_phase nl b (Netlist.phase nl src + step);
      incr buffers;
      cur := b
    done;
    !cur
  in
  List.iter
    (fun (node, idx, f, gap) ->
      let tail = add_chain f (gap - 1) in
      let fanins = Array.copy (Netlist.fanins nl node) in
      fanins.(idx) <- tail;
      Netlist.set_fanins nl node fanins)
    !pending;
  (* 3. Pad primary outputs to the final phase. *)
  List.iter
    (fun oid ->
      let driver = (Netlist.fanins nl oid).(0) in
      let gap = !max_phase - Netlist.phase nl driver in
      if gap > 0 then begin
        let tail = add_chain driver gap in
        Netlist.set_fanins nl oid [| tail |]
      end;
      Netlist.set_phase nl oid !max_phase)
    (Netlist.outputs nl);
  let stats =
    {
      splitters;
      buffers = !buffers;
      delay = !max_phase;
      jj = Cell.netlist_jj_count nl;
      nets = count_nets nl;
    }
  in
  (nl, stats)

let insert ?max_arity nl = fst (insert_with_stats ?max_arity nl)

(* ---- ladder insertion ----

   The per-edge strategy above splits first and then pads every edge
   with its own buffer chain, so consumers of one signal at different
   depths never share regeneration cells. The ladder strategy builds,
   per source, one distribution structure spanning the levels between
   the source and its deepest consumer: at each level a minimal set of
   buffer/splitter cells carries the value, consumers tap the copy at
   their own level, and sharing falls out naturally (the approach of
   the optimal insertion literature the paper cites).

   Feasibility: k copies of a signal cannot exist before
   ceil(log3 k) levels of splitting, so consumer levels are first
   pushed down to respect that bound (iterated to a global fixpoint),
   then the ladders are built mechanically. *)

let insert_ladder_with_stats input =
  let nl = Netlist.copy input in
  let n = Netlist.size nl in
  (* consumer edges of every node *)
  let consumers_of = Array.make n [] in
  Netlist.iter nl (fun nd ->
      Array.iteri
        (fun idx f -> consumers_of.(f) <- (nd.Netlist.id, idx) :: consumers_of.(f))
        nd.Netlist.fanins);
  (* 1. levels with the splitting-capacity constraint:
     level(v) >= level(u) + 1 always, and the i-th earliest consumer
     of u (1-indexed, sorted by level) additionally needs
     level >= level(u) + ceil_log3(i) + (0 if i = 1 yet splitters
     consume a level when i > 1 ... the copy count at depth d is 3^d,
     but the splitting cells themselves occupy levels, so i copies
     need ceil_log3(i) levels, and the consumer sits one deeper). *)
  let level = Array.make n 0 in
  let order = Netlist.topo_order nl in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    Array.iter
      (fun id ->
        let nd = Netlist.node nl id in
        match nd.Netlist.kind with
        | Netlist.Input | Netlist.Const _ -> ()
        | Netlist.Output ->
            let l = level.((Netlist.fanins nl id).(0)) in
            if level.(id) < l then begin level.(id) <- l; changed := true end
        | _ ->
            let l =
              1 + Array.fold_left (fun acc f -> max acc level.(f)) 0 nd.Netlist.fanins
            in
            if level.(id) > l then () ;
            if l > level.(id) then begin
              level.(id) <- l;
              changed := true
            end)
      order;
    (* capacity constraint per source: simulate the pin flow of the
       distribution ladder (1 pin at the source, x3 per level through
       splitters, one pin reserved for continuation while consumers
       remain) and push consumers deeper when a level runs dry *)
    Netlist.iter nl (fun nd ->
        let consumers = consumers_of.(nd.Netlist.id) in
        if consumers <> [] then begin
          let lsrc = level.(nd.Netlist.id) in
          (* relative tap depth wanted by each consumer: a gate at
             level l reads the copy at l-1; an output marker at
             (virtual) level m reads the copy at m *)
          let tap_depth c =
            match Netlist.kind nl c with
            | Netlist.Output -> max 0 (level.(c) - lsrc)
            | _ -> max 0 (level.(c) - 1 - lsrc)
          in
          let wanted =
            List.map (fun (c, _) -> (tap_depth c, c)) consumers
            |> List.sort (fun (d1, c1) (d2, c2) ->
                   match Int.compare d1 d2 with 0 -> Int.compare c1 c2 | c -> c)
          in
          let total = List.length wanted in
          let served = ref 0 in
          let pending = ref wanted in
          let units = ref 1 in
          let depth = ref 0 in
          while !served < total && !depth < (4 * total) + 64 do
            let want, rest = List.partition (fun (r, _) -> r <= !depth) !pending in
            let n_want = List.length want in
            (* serve as many as the pins allow, but keep one pin for
               the continuation whenever anyone remains after this
               level *)
            let s0 = min n_want !units in
            let s =
              if total - !served - s0 > 0 && !units - s0 = 0 then max 0 (s0 - 1)
              else s0
            in
            let bumped = ref [] in
            List.iteri
              (fun i (_, c) ->
                if i < s then begin
                  (* served at this depth: pin the final level *)
                  let final_level =
                    match Netlist.kind nl c with
                    | Netlist.Output -> lsrc + !depth
                    | _ -> lsrc + !depth + 1
                  in
                  if level.(c) < final_level then begin
                    level.(c) <- final_level;
                    changed := true
                  end
                end
                else begin
                  (* not servable here: this consumer's tap (and hence
                     its level) moves one deeper, persistently *)
                  let bumped_level =
                    match Netlist.kind nl c with
                    | Netlist.Output -> lsrc + !depth + 1
                    | _ -> lsrc + !depth + 2
                  in
                  if level.(c) < bumped_level then begin
                    level.(c) <- bumped_level;
                    changed := true
                  end;
                  bumped := (!depth + 1, c) :: !bumped
                end)
              want;
            served := !served + s;
            pending := List.rev_append !bumped rest;
            units := (!units - s) * 3;
            incr depth
          done;
          (* if the loop starved (units 0 with pending), the pending
             consumers were pushed each round; the global fixpoint will
             revisit with their new levels *)
          ()
        end)
  done;
  if !rounds >= 64 then failwith "Insertion.ladder: level fixpoint did not converge";
  (* 2. build ladders. Processing in topo order so sources have their
     final cells before consumers need them. *)
  let splitters = ref 0 and buffers = ref 0 in
  Netlist.iter nl (fun nd -> Netlist.set_phase nl nd.Netlist.id level.(nd.Netlist.id));
  Array.iter
    (fun src ->
      (match Netlist.kind nl src with
      | Netlist.Output -> ()
      | _ ->
          let consumers = List.rev consumers_of.(src) in
          (* demands: consumers tap the copy at their level - 1;
             Output markers tap at the driver's own level (they are
             virtual) but still consume an output pin at max level *)
          let real, outputs =
            List.partition (fun (c, _) -> Netlist.kind nl c <> Netlist.Output) consumers
          in
          let demands =
            List.map (fun (c, idx) -> (level.(c) - 1, (c, idx))) real
            @ List.map (fun (o, idx) -> (level.(o), (o, idx))) outputs
          in
          match demands with
          | [] -> ()
          | _ ->
              let lsrc = level.(src) in
              let dmax = List.fold_left (fun acc (l, _) -> max acc l) lsrc demands in
              (* taps.(j - lsrc) = consumers reading the level-j copy *)
              let span = dmax - lsrc in
              let taps = Array.make (span + 1) [] in
              List.iter
                (fun (l, e) ->
                  let j = max 0 (min span (l - lsrc)) in
                  taps.(j) <- e :: taps.(j))
                demands;
              (* walk levels from deep to shallow computing how many
                 copies each level must OUTPUT (to taps at the level
                 above + cells of the level above) *)
              let cells_needed = Array.make (span + 2) 0 in
              for j = span downto 1 do
                let out_req = List.length taps.(j) + cells_needed.(j + 1) in
                cells_needed.(j) <- (if out_req = 0 then 0 else max 1 ((out_req + 2) / 3))
              done;
              (* source level outputs: taps at lsrc directly? taps.(0)
                 are consumers reading the source itself; the source
                 pin also feeds the first ladder cell *)
              let out_req0 = List.length taps.(0) + cells_needed.(1) in
              if out_req0 > 1 then
                failwith "Insertion.ladder: capacity fixpoint left the source over-subscribed";
              (* instantiate level by level; carriers.(j) = node ids at
                 level lsrc+j carrying the value *)
              let connect (c, idx) driver =
                let fanins = Array.copy (Netlist.fanins nl c) in
                fanins.(idx) <- driver;
                Netlist.set_fanins nl c fanins
              in
              (* available output stubs at the current level: (node, remaining_outputs) *)
              let stubs = ref [ (src, 1) ] in
              List.iter (fun e -> connect e src) taps.(0);
              for j = 1 to span do
                let needed = cells_needed.(j) in
                if needed > 0 then begin
                  (* create the cells of this level, consuming stubs *)
                  let out_req = List.length taps.(j) + cells_needed.(j + 1) in
                  let new_cells = ref [] in
                  let remaining = ref out_req in
                  for _ = 1 to needed do
                    (* pick a stub with available output *)
                    let rec take = function
                      | [] -> failwith "Insertion.ladder: out of stubs"
                      | (node, 0) :: rest ->
                          let found, rest' = take rest in
                          (found, (node, 0) :: rest')
                      | (node, k) :: rest -> (node, (node, k - 1) :: rest)
                    in
                    let driver, stubs' = take !stubs in
                    stubs := stubs';
                    let fanout_here = min 3 !remaining in
                    remaining := !remaining - fanout_here;
                    let cell =
                      if fanout_here >= 2 then begin
                        incr splitters;
                        Netlist.add nl (Netlist.Splitter fanout_here) [| driver |]
                      end
                      else begin
                        incr buffers;
                        Netlist.add nl Netlist.Buf [| driver |]
                      end
                    in
                    Netlist.set_phase nl cell (lsrc + j);
                    new_cells := (cell, fanout_here) :: !new_cells
                  done;
                  stubs := !new_cells;
                  (* connect this level's taps *)
                  List.iter
                    (fun e ->
                      let rec take = function
                        | [] -> failwith "Insertion.ladder: out of tap stubs"
                        | (node, 0) :: rest ->
                            let found, rest' = take rest in
                            (found, (node, 0) :: rest')
                        | (node, k) :: rest -> (node, (node, k - 1) :: rest)
                      in
                      let driver, stubs' = take !stubs in
                      stubs := stubs';
                      connect e driver)
                    taps.(j)
                end
              done))
    (Netlist.topo_order nl);
  (* 3. output markers mirror their driver *)
  List.iter
    (fun oid ->
      Netlist.set_phase nl oid (Netlist.phase nl (Netlist.fanins nl oid).(0)))
    (Netlist.outputs nl);
  (* outputs at a common phase: pad with buffer chains like the
     per-edge strategy *)
  let max_phase =
    Netlist.fold nl
      (fun acc nd ->
        match nd.Netlist.kind with Netlist.Output -> acc | _ -> max acc nd.Netlist.phase)
      0
  in
  List.iter
    (fun oid ->
      let driver = (Netlist.fanins nl oid).(0) in
      let gap = max_phase - Netlist.phase nl driver in
      if gap > 0 then begin
        let cur = ref driver in
        for step = 1 to gap do
          let b = Netlist.add nl Netlist.Buf [| !cur |] in
          Netlist.set_phase nl b (Netlist.phase nl driver + step);
          incr buffers;
          cur := b
        done;
        Netlist.set_fanins nl oid [| !cur |]
      end;
      Netlist.set_phase nl oid max_phase)
    (Netlist.outputs nl);
  let stats =
    {
      splitters = !splitters;
      buffers = !buffers;
      delay = max_phase;
      jj = Cell.netlist_jj_count nl;
      nets = count_nets nl;
    }
  in
  (nl, stats)
