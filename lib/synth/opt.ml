type stats = { nodes_before : int; nodes_after : int; iterations : int }

(* One rewriting pass: rebuild the netlist bottom-up with folding,
   identities and structural hashing; only output-reachable logic is
   emitted (the rebuild starts from the outputs). *)
let pass nl =
  let out = Netlist.create () in
  let memo = Array.make (Netlist.size nl) (-1) in
  let hash : (Netlist.kind * int list, int) Hashtbl.t = Hashtbl.create 256 in
  (* the two constants get at most one node each *)
  let hashed kind fanins =
    let key =
      match kind with
      | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
      | Netlist.Xnor ->
          (kind, List.sort Int.compare fanins)
      | _ -> (kind, fanins)
    in
    match Hashtbl.find_opt hash key with
    | Some id -> id
    | None ->
        let id = Netlist.add out kind (Array.of_list fanins) in
        Hashtbl.replace hash key id;
        id
  in
  let const b = hashed (Netlist.Const b) [] in
  let is_const id =
    match Netlist.kind out id with Netlist.Const b -> Some b | _ -> None
  in
  let mk_not a =
    match is_const a with
    | Some b -> const (not b)
    | None ->
        if Netlist.kind out a = Netlist.Not then (Netlist.fanins out a).(0)
        else hashed Netlist.Not [ a ]
  in
  (* are [a] and [b] complements of each other (structurally)? *)
  let complements a b =
    (Netlist.kind out a = Netlist.Not && (Netlist.fanins out a).(0) = b)
    || (Netlist.kind out b = Netlist.Not && (Netlist.fanins out b).(0) = a)
  in
  let mk2 kind a b =
    match (kind, is_const a, is_const b) with
    (* full constant folding *)
    | Netlist.And, Some x, Some y -> const (x && y)
    | Netlist.Or, Some x, Some y -> const (x || y)
    | Netlist.Nand, Some x, Some y -> const (not (x && y))
    | Netlist.Nor, Some x, Some y -> const (not (x || y))
    | Netlist.Xor, Some x, Some y -> const (x <> y)
    | Netlist.Xnor, Some x, Some y -> const (x = y)
    (* one constant operand *)
    | Netlist.And, Some false, _ | Netlist.And, _, Some false -> const false
    | Netlist.And, Some true, _ -> b
    | Netlist.And, _, Some true -> a
    | Netlist.Or, Some true, _ | Netlist.Or, _, Some true -> const true
    | Netlist.Or, Some false, _ -> b
    | Netlist.Or, _, Some false -> a
    | Netlist.Nand, Some false, _ | Netlist.Nand, _, Some false -> const true
    | Netlist.Nand, Some true, _ -> mk_not b
    | Netlist.Nand, _, Some true -> mk_not a
    | Netlist.Nor, Some true, _ | Netlist.Nor, _, Some true -> const false
    | Netlist.Nor, Some false, _ -> mk_not b
    | Netlist.Nor, _, Some false -> mk_not a
    | Netlist.Xor, Some false, _ -> b
    | Netlist.Xor, _, Some false -> a
    | Netlist.Xor, Some true, _ -> mk_not b
    | Netlist.Xor, _, Some true -> mk_not a
    | Netlist.Xnor, Some true, _ -> b
    | Netlist.Xnor, _, Some true -> a
    | Netlist.Xnor, Some false, _ -> mk_not b
    | Netlist.Xnor, _, Some false -> mk_not a
    (* no constants: identities *)
    | _ ->
        if a = b then
          match kind with
          | Netlist.And | Netlist.Or -> a
          | Netlist.Nand | Netlist.Nor -> mk_not a
          | Netlist.Xor -> const false
          | Netlist.Xnor -> const true
          | _ -> hashed kind [ a; b ]
        else if complements a b then
          match kind with
          | Netlist.And | Netlist.Nor -> const false
          | Netlist.Or | Netlist.Nand -> const true
          | Netlist.Xor -> const true
          | Netlist.Xnor -> const false
          | _ -> hashed kind [ a; b ]
        else hashed kind [ a; b ]
  in
  (* inputs first, preserving order *)
  List.iter
    (fun iid ->
      memo.(iid) <- Netlist.add out ?name:(Netlist.name nl iid) Netlist.Input [||])
    (Netlist.inputs nl);
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      if memo.(id) < 0 then
        let f k = memo.((Netlist.fanins nl id).(k)) in
        let result =
          match Netlist.kind nl id with
          | Netlist.Input -> memo.(id) (* already built *)
          | Netlist.Output -> -1 (* handled after the loop *)
          | Netlist.Const b -> const b
          | Netlist.Buf -> f 0
          | Netlist.Not -> mk_not (f 0)
          | (Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
            | Netlist.Xnor) as k ->
              mk2 k (f 0) (f 1)
          | (Netlist.Maj | Netlist.Splitter _) as k ->
              invalid_arg
                (Printf.sprintf
                   "Opt.optimize: node %d is a %s gate; Opt only accepts the \
                    pre-mapping AOI netlist. Post-mapping majority netlists \
                    are optimized by sf_resyn (Resyn.run), which runs as the \
                    flow's resyn stage between synth and place."
                   id (Netlist.kind_name k))
        in
        memo.(id) <- result)
    order;
  List.iter
    (fun oid ->
      let driver = memo.((Netlist.fanins nl oid).(0)) in
      ignore (Netlist.add out ?name:(Netlist.name nl oid) Netlist.Output [| driver |]))
    (Netlist.outputs nl);
  out

(* copy only logic reachable from the primary outputs *)
let sweep nl =
  let reachable = Array.make (Netlist.size nl) false in
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      Array.iter mark (Netlist.fanins nl id)
    end
  in
  List.iter mark (Netlist.outputs nl);
  List.iter (fun i -> reachable.(i) <- true) (Netlist.inputs nl);
  let out = Netlist.create () in
  let memo = Array.make (Netlist.size nl) (-1) in
  List.iter
    (fun iid ->
      memo.(iid) <- Netlist.add out ?name:(Netlist.name nl iid) Netlist.Input [||])
    (Netlist.inputs nl);
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Input | Netlist.Output -> ()
      | kind ->
          if reachable.(id) then
            let fanins = Array.map (fun f -> memo.(f)) (Netlist.fanins nl id) in
            memo.(id) <- Netlist.add out ?name:(Netlist.name nl id) kind fanins)
    order;
  (* outputs last, preserving their original order *)
  List.iter
    (fun oid ->
      let driver = memo.((Netlist.fanins nl oid).(0)) in
      ignore (Netlist.add out ?name:(Netlist.name nl oid) Netlist.Output [| driver |]))
    (Netlist.outputs nl);
  out

let optimize_with_stats nl =
  let nodes_before = Netlist.size nl in
  let round n = sweep (pass n) in
  let rec fixpoint current iterations =
    let next = round current in
    if Netlist.size next >= Netlist.size current || iterations >= 4 then
      (current, iterations)
    else fixpoint next (iterations + 1)
  in
  let first = round nl in
  let result, iterations = fixpoint first 1 in
  (result, { nodes_before; nodes_after = Netlist.size result; iterations })

let optimize nl = fst (optimize_with_stats nl)
