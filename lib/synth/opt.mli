(** AOI netlist optimization, run before majority conversion.

    A single bottom-up rewriting pass with structural hashing,
    iterated to a fixpoint:

    - {e constant folding}: gates with constant operands collapse
      ([and(x,0) = 0], [or(x,1) = 1], [xor(x,0) = x], ...);
    - {e boolean identities}: idempotence ([and(x,x) = x]),
      complementation ([and(x,~x) = 0], [xor(x,x) = 0]), double
      negation, buffer collapsing;
    - {e common-subexpression elimination}: structurally identical
      gates (commutative operands sorted) share one node;
    - {e dead-node sweep}: only logic reachable from the primary
      outputs survives.

    Primary inputs and outputs keep their order and names, so the
    result is drop-in equivalent (verified by the test suite through
    exhaustive/random simulation). *)

val optimize : Netlist.t -> Netlist.t
(** Full fixpoint optimization of an AOI netlist.

    {b Precondition:} the netlist is pure AOI — no majority or
    splitter nodes. Those appear only after technology mapping, where
    this pass does not apply; the post-mapping optimizer is
    [sf_resyn] ([Resyn.run]), the flow's [resyn] stage. Violations
    raise [Invalid_argument] with a message naming the offending node,
    its kind, and that redirection. *)

type stats = { nodes_before : int; nodes_after : int; iterations : int }

val optimize_with_stats : Netlist.t -> Netlist.t * stats
