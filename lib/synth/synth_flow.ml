type report = {
  jjs : int;
  nets : int;
  delay : int;
  opt_stats : Opt.stats;
  maj_stats : Aoi_to_maj.stats;
  ins_stats : Insertion.stats;
  guard_diags : Diag.t list;
}

let run ?(check = false) ?(engine = `Auto) ?cache aoi =
  let aoi, opt_stats = Opt.optimize_with_stats aoi in
  let maj_smart, maj_stats = Aoi_to_maj.convert_with_stats aoi in
  let maj_naive = Aoi_to_maj.convert_naive aoi in
  (* global resource-efficiency selection (see Aoi_to_maj.convert) *)
  let maj =
    if Cell.netlist_jj_count maj_naive < Cell.netlist_jj_count maj_smart then
      maj_naive
    else maj_smart
  in
  let maj_stats =
    { maj_stats with Aoi_to_maj.jj_after = Cell.netlist_jj_count maj }
  in
  (* insertion: per-edge chains vs shared ladders — keep the cheaper
     result (JJ count, then pipeline depth) *)
  let aqfp_edge, stats_edge = Insertion.insert_with_stats maj in
  let aqfp, ins_stats =
    match Insertion.insert_ladder_with_stats maj with
    | aqfp_ladder, stats_ladder
      when (stats_ladder.Insertion.jj, stats_ladder.Insertion.delay)
           < (stats_edge.Insertion.jj, stats_edge.Insertion.delay) ->
        (aqfp_ladder, stats_ladder)
    | _ -> (aqfp_edge, stats_edge)
    | exception Failure _ -> (aqfp_edge, stats_edge)
  in
  (* equivalence guards at the two semantics-preserving handoffs *)
  let guard_diags =
    if not check then []
    else
      Equiv.check_pair ~engine ?cache ~stage:"aoi->maj" aoi maj
      @ Equiv.check_pair ~engine ?cache ~stage:"maj->aqfp" maj aqfp
  in
  let report =
    {
      opt_stats;
      jjs = ins_stats.Insertion.jj;
      nets = ins_stats.Insertion.nets;
      delay = ins_stats.Insertion.delay;
      maj_stats;
      ins_stats;
      guard_diags;
    }
  in
  (aqfp, report)

let run_quiet aoi = fst (run aoi)

let pp_report ppf r =
  Format.fprintf ppf "JJs=%d nets=%d delay=%d (maj gates=%d, splitters=%d, buffers=%d)"
    r.jjs r.nets r.delay r.maj_stats.Aoi_to_maj.maj_gates
    r.ins_stats.Insertion.splitters r.ins_stats.Insertion.buffers
