(** Logic-synthesis stage driver: AOI netlist → majority conversion →
    splitter/buffer insertion → legal AQFP netlist, with the
    statistics the paper reports in Table II.

    With [~check:true], every handoff is gated by the static
    verifier's equivalence guard ({!Equiv.check_pair}): AOI → chosen
    MAJ netlist, and MAJ → buffered AQFP netlist. The resulting
    [EQ-*] diagnostics ride along in the report (empty when the guard
    is off or both handoffs prove clean). *)

type report = {
  jjs : int;  (** Josephson junctions, all cells included *)
  nets : int;  (** point-to-point connections *)
  delay : int;  (** clock phases *)
  opt_stats : Opt.stats;  (** AOI pre-optimization *)
  maj_stats : Aoi_to_maj.stats;
  ins_stats : Insertion.stats;
  guard_diags : Diag.t list;
      (** stage-equivalence guard findings ([EQ-*]); empty unless
          [run ~check:true] *)
}

val run :
  ?check:bool ->
  ?engine:Equiv.engine ->
  ?cache:Equiv.cache ->
  Netlist.t ->
  Netlist.t * report
(** Synthesize an AOI netlist into a placement-ready AQFP netlist:
    AOI optimization ({!Opt}), majority conversion (cut-collapsing vs
    per-gate, cheaper wins), splitter/buffer insertion (per-edge
    chains vs shared ladders, cheaper wins). [check] (default false)
    runs the per-output equivalence guards at each handoff with the
    given {!Equiv.engine} (default [`Auto]); [cache] memoizes proven
    verdicts across runs. Raises [Invalid_argument] if the input
    contains non-AOI gates. *)

val run_quiet : Netlist.t -> Netlist.t
(** [run] without the report. *)

val pp_report : Format.formatter -> report -> unit
