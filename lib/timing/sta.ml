type net_timing = {
  net : int;
  slack_ps : float;
  flight_ps : float;
  skew_ps : float;
}

type report = {
  wns_ps : float;
  tns_ps : float;
  violations : int;
  worst : net_timing list;
}

let net_slack_ps p ~row_width ni =
  let tech = p.Problem.tech in
  let e = p.Problem.nets.(ni) in
  let sc = p.Problem.cells.(e.Problem.src) in
  let xs = Problem.pin_x p ni `Src in
  let xd = Problem.pin_x p ni `Dst in
  let window = Tech.phase_window_ps tech in
  let flight_ps =
    Problem.net_length p p.Problem.nets.(ni) /. tech.Tech.signal_velocity
  in
  let base =
    match ((sc.Problem.row mod 4) + 4) mod 4 with
    | 0 -> xd -. xs
    | 1 -> xd +. xs
    | 2 -> -.xd +. xs
    | 3 -> (2.0 *. row_width) -. xd -. xs
    | _ -> assert false
  in
  let skew_ps = Float.max 0.0 base /. tech.Tech.clock_velocity in
  let slack_ps = window -. tech.Tech.gate_delay_ps -. flight_ps -. skew_ps in
  { net = ni; slack_ps; flight_ps; skew_ps }

let analyze p =
  let row_width = Float.max 1.0 (Problem.row_width p) in
  let n = Array.length p.Problem.nets in
  (* per-sink slack is independent per net: fan out over the domain
     pool (fixed chunking keeps the array — and therefore wns/tns and
     the sorted worst list — identical at every jobs count) *)
  let timings =
    Parallel.parallel_init ~label:"sta.slack" ~chunk:512 n (fun ni ->
        net_slack_ps p ~row_width ni)
  in
  let wns = ref infinity and tns = ref 0.0 and violations = ref 0 in
  Array.iter
    (fun t ->
      if t.slack_ps < !wns then wns := t.slack_ps;
      if t.slack_ps < 0.0 then begin
        incr violations;
        tns := !tns +. t.slack_ps
      end)
    timings;
  Array.sort (fun a b -> Float.compare a.slack_ps b.slack_ps) timings;
  let worst = Array.to_list (Array.sub timings 0 (min 10 n)) in
  {
    wns_ps = (if n = 0 then 0.0 else !wns);
    tns_ps = !tns;
    violations = !violations;
    worst;
  }

let meets_timing r = r.wns_ps >= 0.0

let pp_report ppf r =
  if meets_timing r then Format.fprintf ppf "timing met (wns=+%.1fps)" r.wns_ps
  else
    Format.fprintf ppf "wns=%.1fps tns=%.1fps violations=%d" r.wns_ps r.tns_ps
      r.violations

let slack_histogram ?(buckets = 10) p =
  let row_width = Float.max 1.0 (Problem.row_width p) in
  let n = Array.length p.Problem.nets in
  if n = 0 then [||]
  else begin
    let slacks = Array.init n (fun ni -> (net_slack_ps p ~row_width ni).slack_ps) in
    let lo = Array.fold_left Float.min infinity slacks in
    let hi = Array.fold_left Float.max neg_infinity slacks in
    let span = Float.max 1e-9 (hi -. lo) in
    let counts = Array.make buckets 0 in
    Array.iter
      (fun s ->
        let b = int_of_float ((s -. lo) /. span *. float_of_int buckets) in
        let b = min (buckets - 1) (max 0 b) in
        counts.(b) <- counts.(b) + 1)
      slacks;
    Array.init buckets (fun b ->
        ( lo +. (span *. float_of_int b /. float_of_int buckets),
          lo +. (span *. float_of_int (b + 1) /. float_of_int buckets),
          counts.(b) ))
  end

let per_row_wns p =
  let row_width = Float.max 1.0 (Problem.row_width p) in
  let wns = Array.make (max 1 (p.Problem.n_rows - 1)) infinity in
  Array.iteri
    (fun ni e ->
      let r = p.Problem.cells.(e.Problem.src).Problem.row in
      if r < Array.length wns then begin
        let s = (net_slack_ps p ~row_width ni).slack_ps in
        if s < wns.(r) then wns.(r) <- s
      end)
    p.Problem.nets;
  wns

let pp_histogram ppf hist =
  Array.iter
    (fun (lo, hi, count) ->
      let bar = String.make (min 60 count) '#' in
      Format.fprintf ppf "[%8.1f, %8.1f) %5d %s@." lo hi count bar)
    hist

let fmax_ghz p =
  let tech = p.Problem.tech in
  let row_width = Float.max 1.0 (Problem.row_width p) in
  let k_max =
    Array.to_list p.Problem.nets
    |> List.mapi (fun ni _ ->
           let t = net_slack_ps p ~row_width ni in
           tech.Tech.gate_delay_ps +. t.flight_ps +. t.skew_ps)
    |> List.fold_left Float.max tech.Tech.gate_delay_ps
  in
  1000.0 /. (float_of_int tech.Tech.phases *. k_max)

let analyze_routed p (routed : Router.result) =
  let tech = p.Problem.tech in
  let row_width = Float.max 1.0 (Problem.row_width p) in
  let n = Array.length p.Problem.nets in
  let timings =
    Parallel.parallel_init ~label:"sta.routed" ~chunk:512 n (fun ni ->
        let t = net_slack_ps p ~row_width ni in
        (* replace the Manhattan flight with the routed length *)
        let routed_flight =
          routed.Router.routes.(ni).Router.length /. tech.Tech.signal_velocity
        in
        let slack_ps = t.slack_ps +. t.flight_ps -. routed_flight in
        { t with flight_ps = routed_flight; slack_ps })
  in
  let wns = ref infinity and tns = ref 0.0 and violations = ref 0 in
  Array.iter
    (fun t ->
      if t.slack_ps < !wns then wns := t.slack_ps;
      if t.slack_ps < 0.0 then begin
        incr violations;
        tns := !tns +. t.slack_ps
      end)
    timings;
  Array.sort (fun a b -> Float.compare a.slack_ps b.slack_ps) timings;
  {
    wns_ps = (if n = 0 then 0.0 else !wns);
    tns_ps = !tns;
    violations = !violations;
    worst = Array.to_list (Array.sub timings 0 (min 10 n));
  }

type yield = {
  samples : int;
  pass : int;
  yield_fraction : float;
  wns_mean_ps : float;
  wns_stddev_ps : float;
}

let monte_carlo ?(samples = 200) ?(sigma_ps = -1.0) ?(seed = 7) p =
  let tech = p.Problem.tech in
  let sigma =
    if sigma_ps >= 0.0 then sigma_ps else 0.1 *. tech.Tech.gate_delay_ps
  in
  let rng = Rng.create seed in
  let row_width = Float.max 1.0 (Problem.row_width p) in
  let n = Array.length p.Problem.nets in
  (* nominal per-net slack without the gate-delay term; each sample
     re-draws the driving cell's delay *)
  let base =
    Array.init n (fun ni ->
        let t = net_slack_ps p ~row_width ni in
        t.slack_ps +. tech.Tech.gate_delay_ps)
  in
  let wns_samples =
    Array.init samples (fun _ ->
        (* one delay draw per cell, shared across its fan-out nets *)
        let delay =
          Array.map
            (fun _ -> Float.max 0.0 (tech.Tech.gate_delay_ps +. (sigma *. Rng.gaussian rng)))
            p.Problem.cells
        in
        let wns = ref infinity in
        Array.iteri
          (fun ni b ->
            let e = p.Problem.nets.(ni) in
            let s = b -. delay.(e.Problem.src) in
            if s < !wns then wns := s)
          base;
        if n = 0 then 0.0 else !wns)
  in
  let pass = Array.fold_left (fun acc w -> if w >= 0.0 then acc + 1 else acc) 0 wns_samples in
  {
    samples;
    pass;
    yield_fraction = float_of_int pass /. float_of_int (max 1 samples);
    wns_mean_ps = Stats.mean wns_samples;
    wns_stddev_ps = Stats.stddev wns_samples;
  }
