type severity = Error | Warning | Info

type loc =
  | Node of int
  | Net of int
  | Row of int
  | At of float * float
  | Global

type t = {
  rule : string;
  severity : severity;
  loc : loc;
  message : string;
  witness : string list;
}

let make ?(witness = []) severity ~rule loc fmt =
  Printf.ksprintf (fun message -> { rule; severity; loc; message; witness }) fmt

let error ?witness ~rule loc fmt = make ?witness Error ~rule loc fmt
let warning ?witness ~rule loc fmt = make ?witness Warning ~rule loc fmt
let info ?witness ~rule loc fmt = make ?witness Info ~rule loc fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let loc_string = function
  | Node i -> Printf.sprintf "node %d" i
  | Net i -> Printf.sprintf "net %d" i
  | Row r -> Printf.sprintf "row %d" r
  | At (x, y) -> Printf.sprintf "(%.1f, %.1f)" x y
  | Global -> "-"

let loc_rank = function
  | Global -> 0
  | Node _ -> 1
  | Net _ -> 2
  | Row _ -> 3
  | At _ -> 4

let compare_loc a b =
  match (a, b) with
  | Node i, Node j | Net i, Net j | Row i, Row j -> Stdlib.compare i j
  | At (x1, y1), At (x2, y2) -> Stdlib.compare (y1, x1) (y2, x2)
  | Global, Global -> 0
  | _ -> Stdlib.compare (loc_rank a) (loc_rank b)

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = compare_loc a.loc b.loc in
      if c <> 0 then c
      else
        let c = String.compare a.message b.message in
        if c <> 0 then c else Stdlib.compare a.witness b.witness

let count sev diags =
  List.fold_left (fun n d -> if d.severity = sev then n + 1 else n) 0 diags

let to_string d =
  let base =
    Printf.sprintf "%-7s %s @ %s: %s" (severity_name d.severity) d.rule
      (loc_string d.loc) d.message
  in
  match d.witness with
  | [] -> base
  | steps ->
      Printf.sprintf "%s [witness: %s]" base (String.concat " -> " steps)

(* Diagnostics now quote arbitrary source lines as witnesses (mlint), so
   the escaper must keep any byte string valid JSON: well-formed UTF-8
   passes through, every ill-formed byte is hex-escaped so a truncated
   or Latin-1 snippet cannot corrupt the JSON-lines stream. *)
let utf8_len b0 =
  if b0 < 0x80 then 1
  else if b0 < 0xc2 then 0 (* continuation or overlong lead *)
  else if b0 < 0xe0 then 2
  else if b0 < 0xf0 then 3
  else if b0 < 0xf5 then 4
  else 0

let utf8_ok s i len =
  let cont k = Char.code s.[i + k] land 0xc0 = 0x80 in
  i + len <= String.length s
  &&
  match len with
  | 1 -> true
  | 2 -> cont 1
  | 3 ->
      let b0 = Char.code s.[i] and b1 = Char.code s.[i + 1] in
      cont 1 && cont 2
      && not (b0 = 0xe0 && b1 < 0xa0) (* overlong *)
      && not (b0 = 0xed && b1 >= 0xa0) (* surrogate *)
  | 4 ->
      let b0 = Char.code s.[i] and b1 = Char.code s.[i + 1] in
      cont 1 && cont 2 && cont 3
      && not (b0 = 0xf0 && b1 < 0x90) (* overlong *)
      && not (b0 = 0xf4 && b1 >= 0x90) (* > U+10FFFF *)
  | _ -> false

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '"' -> Buffer.add_string buf "\\\""
    | '\\' -> Buffer.add_string buf "\\\\"
    | '\n' -> Buffer.add_string buf "\\n"
    | '\t' -> Buffer.add_string buf "\\t"
    | '\r' -> Buffer.add_string buf "\\r"
    | '\b' -> Buffer.add_string buf "\\b"
    | '\012' -> Buffer.add_string buf "\\f"
    | c when Char.code c < 0x20 || Char.code c = 0x7f ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
    | c when Char.code c < 0x80 -> Buffer.add_char buf c
    | c -> (
        let len = utf8_len (Char.code c) in
        match len with
        | 0 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | _ ->
            if utf8_ok s !i len then begin
              Buffer.add_string buf (String.sub s !i len);
              i := !i + len - 1
            end
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))));
    incr i
  done;
  Buffer.contents buf

let loc_json = function
  | Node i -> Printf.sprintf "{\"kind\":\"node\",\"id\":%d}" i
  | Net i -> Printf.sprintf "{\"kind\":\"net\",\"id\":%d}" i
  | Row r -> Printf.sprintf "{\"kind\":\"row\",\"id\":%d}" r
  | At (x, y) -> Printf.sprintf "{\"kind\":\"at\",\"x\":%.3f,\"y\":%.3f}" x y
  | Global -> "{\"kind\":\"global\"}"

let to_json d =
  let witness =
    match d.witness with
    | [] -> ""
    | steps ->
        Printf.sprintf ",\"witness\":[%s]"
          (String.concat ","
             (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) steps))
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"loc\":%s,\"message\":\"%s\"%s}"
    (json_escape d.rule) (severity_name d.severity) (loc_json d.loc)
    (json_escape d.message) witness

let pp ppf d = Format.pp_print_string ppf (to_string d)
