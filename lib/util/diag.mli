(** Structured static-analysis diagnostics.

    Every finding of the {!Check} subsystem (and of
    [Netlist.validate_diags]) is one value of {!t}: a stable rule id
    (e.g. [NL-ARITY-01], [AQFP-PHASE-01], [LVS-OPEN-01]), a severity,
    a location and a human-readable message. Diagnostics render as
    one-line text or as machine-readable JSON objects (one per line),
    and order deterministically — two runs that find the same problems
    print byte-identical reports regardless of the worker-pool size.

    The type lives in [sf_util] (not in the checker library) so that
    every layer of the flow — the netlist IR included — can produce
    diagnostics without a dependency cycle. *)

type severity = Error | Warning | Info

type loc =
  | Node of int  (** netlist node id *)
  | Net of int  (** placement/routing net index (one fan-in edge) *)
  | Row of int  (** placement row / clock phase *)
  | At of float * float  (** layout coordinate, µm *)
  | Global  (** whole-design finding *)

type t = {
  rule : string;  (** stable rule id, e.g. ["NL-ARITY-01"] *)
  severity : severity;
  loc : loc;
  message : string;
  witness : string list;
      (** the evidence path that forces the finding — one rendered
          step per element, source first (e.g. the fan-in cone chain
          that proves a net constant). Empty when the finding needs
          no path. *)
}

val error :
  ?witness:string list -> rule:string -> loc -> ('a, unit, string, t) format4 -> 'a
(** [error ~rule loc fmt ...] — printf-style constructor. *)

val warning :
  ?witness:string list -> rule:string -> loc -> ('a, unit, string, t) format4 -> 'a

val info :
  ?witness:string list -> rule:string -> loc -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val loc_string : loc -> string
(** Compact location, e.g. ["node 12"], ["(120, 340)"], ["-"]. *)

val compare : t -> t -> int
(** Total order: severity (errors first), then rule, location,
    message. Used for stable report rendering. *)

val count : severity -> t list -> int

val to_string : t -> string
(** One line: [severity rule @ loc: message], with
    [ [witness: a -> b -> c] ] appended when a witness is present. *)

val to_json : t -> string
(** One JSON object (no trailing newline), suitable for JSON-lines
    output. *)

val json_escape : string -> string
(** Escape an arbitrary byte string for inclusion inside a JSON string
    literal: the two-character short escapes for ["\"\\\n\t\r\b\012"],
    [\u00XX] for remaining control bytes and DEL, well-formed UTF-8
    passed through verbatim, and every ill-formed byte (bad lead,
    missing continuation, overlong form, surrogate, > U+10FFFF)
    escaped individually as [\u00XX]. Total: any input yields a valid
    JSON string that decodes back to the original bytes (reading each
    [\u00XX] as one byte). *)

val pp : Format.formatter -> t -> unit
