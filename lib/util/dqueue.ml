(* Bucketed dial priority queue over non-negative integer keys with
   integer payloads — the open list of the router's A* core.

   A binary heap pays O(log n) per operation and compares boxed or
   float priorities; the router's costs live on an integer lattice
   (grid steps, via penalties and congestion prices are all quantized
   to 1/16 of a grid unit, see [Search]), so the queue can instead
   keep one FIFO bucket per distinct key and scan a cursor forward —
   O(1) pushes, pops amortized over the total key advance.

   Tie-break contract: keys pop in non-decreasing order, and equal
   keys pop in push (FIFO) order. This is stronger than the binary
   heap it replaces, whose order among equal priorities depended on
   heap shape; documenting FIFO makes every tie deterministic and
   independent of the push history that produced the heap shape.

   Keys need not arrive in non-decreasing order: a push below the
   cursor moves the cursor back. Buckets are paged (256 buckets per
   lazily-allocated page) so sparse, far-apart keys — late negotiation
   rounds price congestion steeply — cost memory proportional to the
   pages actually touched, and the cursor skips empty pages in one
   step. [clear] resets the queue for reuse without freeing anything,
   which is what lets a search arena recycle one queue across every
   net of a row pair. *)

type bucket = {
  mutable data : int array;
  mutable head : int; (* next element to pop *)
  mutable len : int; (* next free slot *)
}

type page = {
  mutable occupied : int; (* buckets with pending elements *)
  buckets : bucket option array; (* 256 slots *)
}

type t = {
  mutable pages : page option array;
  mutable cur : int; (* no pending key is below this *)
  mutable size : int;
  touched_buckets : bucket Vec.t; (* to reset on clear; may hold dups *)
  touched_pages : page Vec.t;
}

let page_bits = 8
let page_size = 1 lsl page_bits

let create () =
  {
    pages = [||];
    cur = 0;
    size = 0;
    touched_buckets = Vec.create ();
    touched_pages = Vec.create ();
  }

let length t = t.size
let is_empty t = t.size = 0

let clear t =
  Vec.iter
    (fun b ->
      b.head <- 0;
      b.len <- 0)
    t.touched_buckets;
  Vec.iter (fun p -> p.occupied <- 0) t.touched_pages;
  Vec.clear t.touched_buckets;
  Vec.clear t.touched_pages;
  t.cur <- 0;
  t.size <- 0

let ensure_pages t n =
  let cap = Array.length t.pages in
  if n > cap then begin
    let cap' = max n (max 8 (2 * cap)) in
    let pages = Array.make cap' None in
    Array.blit t.pages 0 pages 0 cap;
    t.pages <- pages
  end

let get_page t pi =
  ensure_pages t (pi + 1);
  match t.pages.(pi) with
  | Some p -> p
  | None ->
      let p = { occupied = 0; buckets = Array.make page_size None } in
      t.pages.(pi) <- Some p;
      p

let get_bucket page slot =
  match page.buckets.(slot) with
  | Some b -> b
  | None ->
      let b = { data = Array.make 4 0; head = 0; len = 0 } in
      page.buckets.(slot) <- Some b;
      b

let push t key v =
  if key < 0 then invalid_arg "Dqueue.push: negative key";
  let page = get_page t (key lsr page_bits) in
  let b = get_bucket page (key land (page_size - 1)) in
  if b.len = Array.length b.data then
    if b.head > 0 then begin
      (* reclaim the popped prefix before growing *)
      Array.blit b.data b.head b.data 0 (b.len - b.head);
      b.len <- b.len - b.head;
      b.head <- 0
    end
    else begin
      let data = Array.make (2 * b.len) 0 in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
  if b.head = b.len then begin
    (* bucket was empty: register it, and its page if it was idle *)
    if page.occupied = 0 then ignore (Vec.push t.touched_pages page);
    page.occupied <- page.occupied + 1;
    ignore (Vec.push t.touched_buckets b)
  end;
  b.data.(b.len) <- v;
  b.len <- b.len + 1;
  if key < t.cur then t.cur <- key;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    let result = ref None in
    while !result = None do
      let pi = t.cur lsr page_bits in
      match t.pages.(pi) with
      | None -> t.cur <- (pi + 1) lsl page_bits
      | Some page when page.occupied = 0 -> t.cur <- (pi + 1) lsl page_bits
      | Some page ->
          let slot = ref (t.cur land (page_size - 1)) in
          let found = ref false in
          while (not !found) && !slot < page_size do
            (match page.buckets.(!slot) with
            | Some b when b.head < b.len ->
                found := true;
                let key = (pi lsl page_bits) lor !slot in
                let v = b.data.(b.head) in
                b.head <- b.head + 1;
                if b.head = b.len then begin
                  b.head <- 0;
                  b.len <- 0;
                  page.occupied <- page.occupied - 1
                end;
                t.cur <- key;
                t.size <- t.size - 1;
                result := Some (key, v)
            | _ -> ());
            if not !found then incr slot
          done;
          if not !found then t.cur <- (pi + 1) lsl page_bits
    done;
    !result
  end
