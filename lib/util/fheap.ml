(* Array-backed binary min-heap specialized to (float priority, int
   payload) pairs — the shape of every A* open list in the router.

   The polymorphic pairing heap in [Pqueue] allocates a node per push
   and a list cell per meld, which makes the A* inner loop GC-bound.
   This heap allocates nothing per operation (amortized): two flat
   arrays, grown by doubling, hold the whole queue, and the floats
   live unboxed in a float array. *)

type t = {
  mutable prio : float array;
  mutable data : int array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  { prio = Array.make capacity 0.0; data = Array.make capacity 0; size = 0 }

let is_empty t = t.size = 0

let length t = t.size

let clear t = t.size <- 0

let grow t =
  let cap = Array.length t.prio in
  let prio = Array.make (2 * cap) 0.0 in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.prio 0 prio 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.prio <- prio;
  t.data <- data

let push t p v =
  if t.size = Array.length t.prio then grow t;
  (* sift up: move holes, write once *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.prio.(parent) > p then begin
      t.prio.(!i) <- t.prio.(parent);
      t.data.(!i) <- t.data.(parent);
      i := parent
    end
    else continue := false
  done;
  t.prio.(!i) <- p;
  t.data.(!i) <- v

let pop t =
  if t.size = 0 then None
  else begin
    let top_p = t.prio.(0) and top_v = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      (* sift the last element down from the root *)
      let p = t.prio.(t.size) and v = t.data.(t.size) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= t.size then continue := false
        else begin
          let r = l + 1 in
          let c = if r < t.size && t.prio.(r) < t.prio.(l) then r else l in
          if t.prio.(c) < p then begin
            t.prio.(!i) <- t.prio.(c);
            t.data.(!i) <- t.data.(c);
            i := c
          end
          else continue := false
        end
      done;
      t.prio.(!i) <- p;
      t.data.(!i) <- v
    end;
    Some (top_p, top_v)
  end

let peek t = if t.size = 0 then None else Some (t.prio.(0), t.data.(0))
