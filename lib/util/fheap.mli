(** Mutable min-priority queue specialized to [(float, int)] pairs:
    an array-backed binary heap with unboxed float priorities and zero
    per-operation allocation (amortized).

    This is the open list of the router's A* searches — the single
    hottest loop in the flow — where the polymorphic pairing heap in
    {!Pqueue} spends its time allocating nodes. [Pqueue] remains the
    general-purpose queue for non-[int] payloads.

    Like [Pqueue] there is no decrease-key: push duplicates and skip
    stale entries (lazy deletion). Pop order is fully deterministic
    (ties resolve by fixed array positions, never by allocation
    order). *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh empty heap. [capacity] (default 64) pre-sizes the backing
    arrays; they grow by doubling. *)

val is_empty : t -> bool

val length : t -> int

val push : t -> float -> int -> unit
(** [push q prio v] inserts [v] with priority [prio]; lower priorities
    pop first. *)

val pop : t -> (float * int) option
(** Remove and return the minimum-priority element. *)

val peek : t -> (float * int) option

val clear : t -> unit
