(* Indexed binary max-heap: heap.(slot) = key, pos.(key) = slot. *)

type t = {
  better : int -> int -> bool;
  mutable heap : int array;
  mutable pos : int array; (* -1 = not in heap *)
  mutable size : int;
}

let create ~better = { better; heap = Array.make 16 0; pos = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0
let mem t k = k < Array.length t.pos && t.pos.(k) >= 0

let ensure_pos t k =
  let n = Array.length t.pos in
  if k >= n then begin
    let p = Array.make (max (k + 1) (2 * n + 16)) (-1) in
    Array.blit t.pos 0 p 0 n;
    t.pos <- p
  end

let ensure_heap t =
  let n = Array.length t.heap in
  if t.size >= n then begin
    let h = Array.make (2 * n) 0 in
    Array.blit t.heap 0 h 0 n;
    t.heap <- h
  end

let place t k slot =
  t.heap.(slot) <- k;
  t.pos.(k) <- slot

let rec sift_up t k slot =
  if slot = 0 then place t k slot
  else
    let parent = (slot - 1) / 2 in
    let pk = t.heap.(parent) in
    if t.better k pk then begin
      place t pk slot;
      sift_up t k parent
    end
    else place t k slot

let rec sift_down t k slot =
  let l = (2 * slot) + 1 in
  if l >= t.size then place t k slot
  else begin
    let r = l + 1 in
    let best =
      if r < t.size && t.better t.heap.(r) t.heap.(l) then r else l
    in
    let bk = t.heap.(best) in
    if t.better bk k then begin
      place t bk slot;
      sift_down t k best
    end
    else place t k slot
  end

let insert t k =
  ensure_pos t k;
  if t.pos.(k) < 0 then begin
    ensure_heap t;
    let slot = t.size in
    t.size <- t.size + 1;
    sift_up t k slot
  end

let pop t =
  if t.size = 0 then None
  else begin
    let best = t.heap.(0) in
    t.pos.(best) <- -1;
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.heap.(t.size) in
      sift_down t last 0
    end;
    Some best
  end

let update t k =
  if mem t k then begin
    let slot = t.pos.(k) in
    sift_up t k slot;
    if t.pos.(k) = slot then sift_down t k slot
  end

let clear t =
  for i = 0 to t.size - 1 do
    t.pos.(t.heap.(i)) <- -1
  done;
  t.size <- 0
