(** Indexed binary max-heap over small integer keys.

    The heap orders keys by a caller-supplied strict [better] relation
    and tracks each key's slot, so membership tests, re-ordering after
    a priority change ([update]) and removal of the best key are all
    O(log n) with no lazy duplicates. The SAT solver's VSIDS decision
    order is the primary client: [better] reads the activity array and
    breaks ties on the lower key, which makes every decision sequence
    deterministic regardless of how activities were bumped.

    [better] must be a strict total order while a key is in the heap;
    if the underlying priorities change, call {!update} (or
    re-[insert]) for the affected key before relying on [pop]. *)

type t

val create : better:(int -> int -> bool) -> t
(** [create ~better] — an empty heap; [better a b] means [a] pops
    before [b]. The relation is read at every sift, so it may consult
    mutable state (e.g. an activity array) as long as {!update} is
    called when that state changes. *)

val length : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool

val insert : t -> int -> unit
(** Add a key (no-op when already present). Keys are non-negative and
    the heap grows to accommodate any key value. *)

val pop : t -> int option
(** Remove and return the best key. *)

val update : t -> int -> unit
(** Restore heap order around a key whose priority changed (no-op when
    the key is not in the heap). *)

val clear : t -> unit
