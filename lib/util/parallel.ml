(* Deterministic multicore execution on a lazily-built fixed domain
   pool.

   Determinism contract: work is split into *static* chunks whose
   boundaries depend only on the input size (never on the pool size or
   on scheduling), each chunk is computed independently, and partial
   results are combined left-to-right in chunk order. A run with one
   domain therefore evaluates the exact same float expressions, in the
   exact same grouping, as a run with sixteen — only the wall-clock
   interleaving differs.

   The contract is *checkable*: every call site carries a [~label] and
   an optional sanitizer (sf_dsan) can install {!hooks} that observe
   batch boundaries, permute the chunk execution order (the combine
   order never moves, so any output change under a permuted schedule
   is a proven determinism bug), and attribute array accesses to the
   chunk that made them via {!current_chunk}. With no hooks installed
   every check below compiles down to one ref load, so the off mode
   costs nothing. *)

let max_jobs = 64

let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

(* a malformed SF_JOBS falls back to the domain count, but loudly:
   silently ignoring "SF_JOBS=eight" cost real debugging time *)
let warned_bad_env = ref false (* sl-ignore: SL-GLOBAL-01 warn-once latch, never read by stage code *)

let env_jobs () =
  match Sys.getenv_opt "SF_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (clamp n)
      | _ ->
          if not !warned_bad_env then begin
            warned_bad_env := true;
            Printf.eprintf
              "superflow: warning: SF_JOBS=%S is not a positive integer; \
               falling back to the machine's domain count\n\
               %!"
              s
          end;
          None)

(* CLI-set job override; results are chunk-count independent.
   sl-ignore: SL-GLOBAL-01 listed in the determinism-contract table *)
let requested : int option ref = ref None

let jobs () =
  match !requested with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> clamp (Domain.recommended_domain_count ()))

let set_jobs n = requested := Some (clamp n)

let auto_jobs () = requested := None

(* ---- sanitizer hooks ----

   Installed by sf_dsan, [None] in production. The submitting domain
   installs hooks before any batch runs; the pool's queue mutex
   publishes the write to every worker, so the plain ref is safe. *)

type chunk_ctx = { cc_label : string; cc_chunk : int; cc_lo : int; cc_hi : int }

type hooks = {
  h_batch_start : label:string -> n_chunks:int -> unit;
  h_permute : label:string -> int array -> unit;
      (* may shuffle the chunk *execution* order in place *)
  h_batch_end : label:string -> unit;
  h_nested : label:string -> outer:string -> unit;
  h_reduce_mismatch : label:string -> chunk:int -> unit;
}

(* dsan instrumentation hooks, installed once at sanitizer arm time.
   sl-ignore: SL-GLOBAL-01 listed in the determinism-contract table *)
let hooks : hooks option ref = ref None

let set_hooks h = hooks := h

(* which chunk this domain is currently executing (only maintained
   while hooks are installed; [None] outside any chunk) *)
let chunk_ctx : chunk_ctx option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_chunk () = Domain.DLS.get chunk_ctx

(* ---- the pool ----

   [jobs () - 1] worker domains block on a condition variable waiting
   for thunks; the submitting domain executes thunks too, so a pool of
   size n really computes with n lanes. Completion is tracked per batch
   with an atomic counter (workers publish their chunk results before
   the decrement, so the counter doubles as the release fence). *)

type pool = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* a chunk function that itself calls into Parallel must run inline:
   a worker blocking on a sub-batch could deadlock the pool *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* process-wide domain pool; pool identity never reaches stage outputs.
   sl-ignore: SL-GLOBAL-01 listed in the determinism-contract table *)
let current : pool option ref = ref None

let current_size = ref 0 (* sl-ignore: SL-GLOBAL-01 size of the pool above *)

let shutdown () =
  match !current with
  | None -> ()
  | Some pool ->
      Mutex.lock pool.mutex;
      pool.stop <- true;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex;
      List.iter Domain.join pool.workers;
      current := None;
      current_size := 0

let () = at_exit shutdown

let worker_loop pool () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

(* (re)build the pool to match [jobs ()]; [None] means run serially *)
let ensure_pool () =
  let n = jobs () in
  if n <> !current_size then shutdown ();
  if n <= 1 then None
  else
    match !current with
    | Some p -> Some p
    | None ->
        let pool =
          {
            mutex = Mutex.create ();
            cond = Condition.create ();
            queue = Queue.create ();
            stop = false;
            workers = [];
          }
        in
        pool.workers <-
          List.init (n - 1) (fun _ -> Domain.spawn (worker_loop pool));
        current := Some pool;
        current_size := n;
        Some pool

let run_tasks (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n = 0 then ()
  else if n = 1 || Domain.DLS.get in_worker then
    Array.iter (fun f -> f ()) tasks
  else
    match ensure_pool () with
    | None -> Array.iter (fun f -> f ()) tasks
    | Some pool ->
        let remaining = Atomic.make n in
        let wrap f () =
          f ();
          Atomic.decr remaining
        in
        Mutex.lock pool.mutex;
        Array.iter (fun f -> Queue.push (wrap f) pool.queue) tasks;
        Condition.broadcast pool.cond;
        Mutex.unlock pool.mutex;
        (* the caller is a lane too: drain the queue alongside the
           workers, then spin briefly for in-flight stragglers *)
        let rec drain () =
          Mutex.lock pool.mutex;
          let t =
            if Queue.is_empty pool.queue then None
            else Some (Queue.pop pool.queue)
          in
          Mutex.unlock pool.mutex;
          match t with
          | Some f ->
              f ();
              drain ()
          | None -> ()
        in
        drain ();
        while Atomic.get remaining > 0 do
          Domain.cpu_relax ()
        done

(* default chunking: a pure function of the input size (64 pieces),
   so the chunk structure is identical whatever the pool size *)
let default_chunk n = max 1 ((n + 63) / 64)

let resolve_chunk chunk n =
  match chunk with
  | Some c when c <= 0 ->
      invalid_arg "Parallel.map_chunks: chunk size must be positive"
  | Some c -> c
  | None -> default_chunk n

let map_chunks ?(label = "unlabeled") ?chunk ~n f =
  if n <= 0 then begin
    (* still validate: a bad chunk size is a bug at every [n] *)
    ignore (resolve_chunk chunk (max 1 n));
    [||]
  end
  else begin
    let chunk = resolve_chunk chunk n in
    let n_chunks = (n + chunk - 1) / chunk in
    let results = Array.make n_chunks None in
    let task ci () =
      let lo = ci * chunk in
      let hi = min n (lo + chunk) in
      results.(ci) <- Some (try Ok (f lo hi) with e -> Error e)
    in
    (match !hooks with
    | None -> run_tasks (Array.init n_chunks task)
    | Some h -> (
        match current_chunk () with
        | Some outer ->
            (* nested call from inside a chunk: runs inline (no batch
               of its own); the sanitizer records it and accesses stay
               attributed to the outer chunk *)
            h.h_nested ~label ~outer:outer.cc_label;
            for ci = 0 to n_chunks - 1 do
              task ci ()
            done
        | None ->
            h.h_batch_start ~label ~n_chunks;
            (* the sanitizer may permute the execution order; results
               land by chunk index and the caller combines in chunk
               order, so a permuted schedule must be unobservable *)
            let order = Array.init n_chunks (fun i -> i) in
            h.h_permute ~label order;
            let tracked ci () =
              let lo = ci * chunk in
              let hi = min n (lo + chunk) in
              Domain.DLS.set chunk_ctx
                (Some { cc_label = label; cc_chunk = ci; cc_lo = lo; cc_hi = hi });
              task ci ();
              Domain.DLS.set chunk_ctx None
            in
            run_tasks (Array.map (fun ci -> tracked ci) order);
            h.h_batch_end ~label));
    (* surface the leftmost chunk's failure so error behavior does not
       depend on scheduling *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let parallel_init ?label ?chunk n f =
  let parts =
    map_chunks ?label ?chunk ~n (fun lo hi ->
        Array.init (hi - lo) (fun k -> f (lo + k)))
  in
  Array.concat (Array.to_list parts)

let parallel_map ?label ?chunk f a =
  parallel_init ?label ?chunk (Array.length a) (fun i -> f a.(i))

let parallel_iter ?label ?chunk f a =
  ignore
    (map_chunks ?label ?chunk ~n:(Array.length a) (fun lo hi ->
         for i = lo to hi - 1 do
           f a.(i)
         done))

let parallel_reduce ?(label = "unlabeled") ?chunk ~map ~combine ~init a =
  let n = Array.length a in
  if n = 0 then init
  else begin
    let chunk_part lo hi =
      let acc = ref (map a.(lo)) in
      for i = lo + 1 to hi - 1 do
        acc := combine !acc (map a.(i))
      done;
      !acc
    in
    let parts = map_chunks ~label ?chunk ~n chunk_part in
    (* combine/grouping audit: replay every chunk serially (same
       grouping, same element order) and compare partials. A mismatch
       proves [map]/[combine] touched state the schedule can reorder. *)
    (match !hooks with
    | Some h when current_chunk () = None ->
        let c = resolve_chunk chunk n in
        let n_chunks = (n + c - 1) / c in
        for ci = 0 to n_chunks - 1 do
          let replay = chunk_part (ci * c) (min n ((ci * c) + c)) in
          let same =
            (* replay check on arbitrary 'acc values; a functional value
               raises Invalid_argument and is simply uncheckable here.
               sl-ignore: SL-CATCH-01 uncheckable values must not fail the run *)
            try Stdlib.compare parts.(ci) replay = 0 with _ -> true
          in
          if not same then h.h_reduce_mismatch ~label ~chunk:ci
        done
    | _ -> ());
    Array.fold_left combine init parts
  end
