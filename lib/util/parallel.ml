(* Deterministic multicore execution on a lazily-built fixed domain
   pool.

   Determinism contract: work is split into *static* chunks whose
   boundaries depend only on the input size (never on the pool size or
   on scheduling), each chunk is computed independently, and partial
   results are combined left-to-right in chunk order. A run with one
   domain therefore evaluates the exact same float expressions, in the
   exact same grouping, as a run with sixteen — only the wall-clock
   interleaving differs. *)

let max_jobs = 64

let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

let env_jobs () =
  match Sys.getenv_opt "SF_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (clamp n)
      | _ -> None)

let requested : int option ref = ref None

let jobs () =
  match !requested with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> clamp (Domain.recommended_domain_count ()))

let set_jobs n = requested := Some (clamp n)

let auto_jobs () = requested := None

(* ---- the pool ----

   [jobs () - 1] worker domains block on a condition variable waiting
   for thunks; the submitting domain executes thunks too, so a pool of
   size n really computes with n lanes. Completion is tracked per batch
   with an atomic counter (workers publish their chunk results before
   the decrement, so the counter doubles as the release fence). *)

type pool = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* a chunk function that itself calls into Parallel must run inline:
   a worker blocking on a sub-batch could deadlock the pool *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let current : pool option ref = ref None

let current_size = ref 0

let shutdown () =
  match !current with
  | None -> ()
  | Some pool ->
      Mutex.lock pool.mutex;
      pool.stop <- true;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex;
      List.iter Domain.join pool.workers;
      current := None;
      current_size := 0

let () = at_exit shutdown

let worker_loop pool () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

(* (re)build the pool to match [jobs ()]; [None] means run serially *)
let ensure_pool () =
  let n = jobs () in
  if n <> !current_size then shutdown ();
  if n <= 1 then None
  else
    match !current with
    | Some p -> Some p
    | None ->
        let pool =
          {
            mutex = Mutex.create ();
            cond = Condition.create ();
            queue = Queue.create ();
            stop = false;
            workers = [];
          }
        in
        pool.workers <-
          List.init (n - 1) (fun _ -> Domain.spawn (worker_loop pool));
        current := Some pool;
        current_size := n;
        Some pool

let run_tasks (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n = 0 then ()
  else if n = 1 || Domain.DLS.get in_worker then
    Array.iter (fun f -> f ()) tasks
  else
    match ensure_pool () with
    | None -> Array.iter (fun f -> f ()) tasks
    | Some pool ->
        let remaining = Atomic.make n in
        let wrap f () =
          f ();
          Atomic.decr remaining
        in
        Mutex.lock pool.mutex;
        Array.iter (fun f -> Queue.push (wrap f) pool.queue) tasks;
        Condition.broadcast pool.cond;
        Mutex.unlock pool.mutex;
        (* the caller is a lane too: drain the queue alongside the
           workers, then spin briefly for in-flight stragglers *)
        let rec drain () =
          Mutex.lock pool.mutex;
          let t =
            if Queue.is_empty pool.queue then None
            else Some (Queue.pop pool.queue)
          in
          Mutex.unlock pool.mutex;
          match t with
          | Some f ->
              f ();
              drain ()
          | None -> ()
        in
        drain ();
        while Atomic.get remaining > 0 do
          Domain.cpu_relax ()
        done

(* default chunking: a pure function of the input size (64 pieces),
   so the chunk structure is identical whatever the pool size *)
let default_chunk n = max 1 ((n + 63) / 64)

let map_chunks ?chunk ~n f =
  if n <= 0 then [||]
  else begin
    let chunk =
      match chunk with Some c -> max 1 c | None -> default_chunk n
    in
    let n_chunks = (n + chunk - 1) / chunk in
    let results = Array.make n_chunks None in
    let task ci () =
      let lo = ci * chunk in
      let hi = min n (lo + chunk) in
      results.(ci) <- Some (try Ok (f lo hi) with e -> Error e)
    in
    run_tasks (Array.init n_chunks task);
    (* surface the leftmost chunk's failure so error behavior does not
       depend on scheduling *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let parallel_init ?chunk n f =
  let parts =
    map_chunks ?chunk ~n (fun lo hi ->
        Array.init (hi - lo) (fun k -> f (lo + k)))
  in
  Array.concat (Array.to_list parts)

let parallel_map ?chunk f a =
  parallel_init ?chunk (Array.length a) (fun i -> f a.(i))

let parallel_iter ?chunk f a =
  ignore
    (map_chunks ?chunk ~n:(Array.length a) (fun lo hi ->
         for i = lo to hi - 1 do
           f a.(i)
         done))

let parallel_reduce ?chunk ~map ~combine ~init a =
  let n = Array.length a in
  if n = 0 then init
  else begin
    let parts =
      map_chunks ?chunk ~n (fun lo hi ->
          let acc = ref (map a.(lo)) in
          for i = lo + 1 to hi - 1 do
            acc := combine !acc (map a.(i))
          done;
          !acc)
    in
    Array.fold_left combine init parts
  end
