(** Deterministic multicore execution on a lazily-built fixed domain
    pool (OCaml 5 [Domain]s).

    Work is split into {e static} chunks whose boundaries depend only
    on the input size — never on the pool size or on scheduling — each
    chunk is computed independently, and partial results are combined
    left-to-right in chunk order. As long as the chunk function is
    pure (or writes only to locations owned by its chunk), a run with
    [jobs = 1] is bit-identical to a run with [jobs = 16]: the same
    float expressions are evaluated in the same grouping; only the
    wall-clock interleaving differs.

    Pool size resolution, first match wins:
    + [set_jobs n] (the [--jobs] CLI flag / [Flow.run ~jobs]),
    + the [SF_JOBS] environment variable,
    + [Domain.recommended_domain_count ()].

    A size of 1 short-circuits to plain serial execution (no domains
    are ever spawned). The pool is built lazily on first use, resized
    lazily after [set_jobs], and torn down [at_exit]. Calls made from
    inside a chunk function run inline (no nested pools). *)

val jobs : unit -> int
(** The lane count the next parallel call will use (includes the
    calling domain), in [1 .. 64]. *)

val set_jobs : int -> unit
(** Override the pool size (clamped to [1 .. 64]). Takes effect at
    the next parallel call; an existing pool of a different size is
    torn down and rebuilt. *)

val auto_jobs : unit -> unit
(** Drop the [set_jobs] override and fall back to [SF_JOBS] /
    [Domain.recommended_domain_count]. *)

val shutdown : unit -> unit
(** Join all worker domains. Safe to call at any quiescent point; the
    pool is rebuilt on the next parallel call. Also runs [at_exit]. *)

val map_chunks : ?chunk:int -> n:int -> (int -> int -> 'b) -> 'b array
(** [map_chunks ~chunk ~n f] applies [f lo hi] to each static chunk
    [\[lo, hi)] of [0 .. n-1] ([hi - lo <= chunk]) and returns the
    per-chunk results in chunk order. [chunk] defaults to [n/64]
    (rounded up). This is the primitive the other combinators are
    built on; use it directly for map-reduce with per-chunk
    accumulator buffers. If a chunk raises, the leftmost failing
    chunk's exception is re-raised (deterministically). *)

val parallel_init : ?chunk:int -> int -> (int -> 'a) -> 'a array
(** Deterministic parallel [Array.init]. *)

val parallel_map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel [Array.map]: same result, any pool size. *)

val parallel_iter : ?chunk:int -> ('a -> unit) -> 'a array -> unit
(** Parallel [Array.iter]. [f] must only write to locations owned by
    its own element (disjoint writes), otherwise determinism — and
    memory safety of the result — is forfeit. *)

val parallel_reduce :
  ?chunk:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** [parallel_reduce ~map ~combine ~init a] folds [combine] over
    [map a.(i)] with a fixed left-to-right combine order: chunk
    partials are folded in chunk order, seeded with [init]. For an
    associative [combine] this equals the serial
    [Array.fold_left (fun acc x -> combine acc (map x)) init a]; for
    merely deterministic [combine] (e.g. float addition) the result is
    still identical across pool sizes because the grouping is fixed by
    the chunking, not by the schedule. *)
