(** Deterministic multicore execution on a lazily-built fixed domain
    pool (OCaml 5 [Domain]s).

    Work is split into {e static} chunks whose boundaries depend only
    on the input size — never on the pool size or on scheduling — each
    chunk is computed independently, and partial results are combined
    left-to-right in chunk order. As long as the chunk function is
    pure (or writes only to locations owned by its chunk), a run with
    [jobs = 1] is bit-identical to a run with [jobs = 16]: the same
    float expressions are evaluated in the same grouping; only the
    wall-clock interleaving differs.

    Pool size resolution, first match wins:
    + [set_jobs n] (the [--jobs] CLI flag / [Flow.run ~jobs]),
    + the [SF_JOBS] environment variable (a malformed value warns once
      on stderr and is ignored),
    + [Domain.recommended_domain_count ()].

    A size of 1 short-circuits to plain serial execution (no domains
    are ever spawned). The pool is built lazily on first use, resized
    lazily after [set_jobs], and torn down [at_exit]. Calls made from
    inside a chunk function run inline (no nested pools).

    The contract is checkable: every call site should carry a [~label]
    and the determinism sanitizer (sf_dsan) can install {!hooks} that
    observe batch boundaries, permute the chunk {e execution} order
    (the combine order never moves, so any output change under a
    permuted schedule is a proven determinism bug), and attribute
    array accesses to chunks via {!current_chunk}. With no hooks
    installed every check compiles down to one ref load. *)

val jobs : unit -> int
(** The lane count the next parallel call will use (includes the
    calling domain), in [1 .. 64]. *)

val set_jobs : int -> unit
(** Override the pool size (clamped to [1 .. 64]). Takes effect at
    the next parallel call; an existing pool of a different size is
    torn down and rebuilt. *)

val auto_jobs : unit -> unit
(** Drop the [set_jobs] override and fall back to [SF_JOBS] /
    [Domain.recommended_domain_count]. *)

val shutdown : unit -> unit
(** Join all worker domains. Safe to call at any quiescent point; the
    pool is rebuilt on the next parallel call. Also runs [at_exit]. *)

val map_chunks :
  ?label:string -> ?chunk:int -> n:int -> (int -> int -> 'b) -> 'b array
(** [map_chunks ~label ~chunk ~n f] applies [f lo hi] to each static
    chunk [\[lo, hi)] of [0 .. n-1] ([hi - lo <= chunk]) and returns
    the per-chunk results in chunk order. [chunk] defaults to [n/64]
    (rounded up). This is the primitive the other combinators are
    built on; use it directly for map-reduce with per-chunk
    accumulator buffers. If a chunk raises, the leftmost failing
    chunk's exception is re-raised (deterministically).

    [label] names the call site ("drc.tiles", "route.pairs", …) in
    sanitizer diagnostics; it has no effect on execution.

    [n <= 0] returns [[||]] without calling [f] (the empty batch is
    well-defined and not an error). [chunk <= 0] raises
    [Invalid_argument] — including when [n <= 0], so the misuse is
    caught on every input size. *)

val parallel_init : ?label:string -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** Deterministic parallel [Array.init]. *)

val parallel_map :
  ?label:string -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel [Array.map]: same result, any pool size. *)

val parallel_iter :
  ?label:string -> ?chunk:int -> ('a -> unit) -> 'a array -> unit
(** Parallel [Array.iter]. [f] must only write to locations owned by
    its own element (disjoint writes), otherwise determinism — and
    memory safety of the result — is forfeit. *)

val parallel_reduce :
  ?label:string ->
  ?chunk:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** [parallel_reduce ~map ~combine ~init a] folds [combine] over
    [map a.(i)] with a fixed left-to-right combine order: chunk
    partials are folded in chunk order, seeded with [init]. For an
    associative [combine] this equals the serial
    [Array.fold_left (fun acc x -> combine acc (map x)) init a]; for
    merely deterministic [combine] (e.g. float addition) the result is
    still identical across pool sizes because the grouping is fixed by
    the chunking, not by the schedule.

    Under sanitizer hooks each chunk partial is additionally replayed
    serially and compared ([h_reduce_mismatch] fires on divergence),
    which catches [map]/[combine] functions that read or write state
    another chunk can touch. *)

(** {1 Sanitizer interface}

    Everything below is consumed by sf_dsan; production code never
    touches it. *)

type chunk_ctx = {
  cc_label : string;  (** call-site label of the running batch *)
  cc_chunk : int;  (** chunk index within the batch *)
  cc_lo : int;  (** inclusive start of the owned index range *)
  cc_hi : int;  (** exclusive end of the owned index range *)
}

type hooks = {
  h_batch_start : label:string -> n_chunks:int -> unit;
  h_permute : label:string -> int array -> unit;
      (** receives the identity order and may shuffle it in place to
          fuzz the chunk execution order *)
  h_batch_end : label:string -> unit;
  h_nested : label:string -> outer:string -> unit;
      (** a parallel call was made from inside chunk [outer]; it runs
          inline and is not tracked as a batch of its own *)
  h_reduce_mismatch : label:string -> chunk:int -> unit;
      (** a [parallel_reduce] chunk partial differed from its serial
          replay *)
}

val set_hooks : hooks option -> unit
(** Install (or clear) the sanitizer hooks. Must be called from the
    submitting domain while no batch is in flight. *)

val current_chunk : unit -> chunk_ctx option
(** The chunk this domain is currently executing, or [None] outside
    any chunk. Only maintained while hooks are installed. *)
