(* Wall-clock timing for stage runtimes and the bench speedup tables.

   [Sys.time] returns *CPU* time summed across every domain, which
   makes a parallel run look slower the better it scales; wall time is
   the quantity a speedup table must report. *)

let now_s () = Unix.gettimeofday ()

let time f =
  let t0 = now_s () in
  let v = f () in
  (v, now_s () -. t0)
