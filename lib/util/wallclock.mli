(** Wall-clock timing ([Sys.time] is CPU time summed across domains,
    which overcounts parallel runs; stage runtimes and speedup tables
    must use wall time). *)

val now_s : unit -> float
(** Seconds since the epoch, sub-microsecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed wall
    time in seconds. *)
