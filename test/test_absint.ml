(* Tests for the sf_absint abstract-interpretation engine: the ternary
   constant domain must agree with concrete simulation on randomized
   netlists, the phase domain must accept every bundled post-insertion
   design and reject seeded unbalance, every AI-* diagnostic must
   carry a witness and resolve in the rule registry, and the whole
   pass family must render byte-identically at any worker count. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let count_rule rule diags =
  List.length (List.filter (fun d -> d.Diag.rule = rule) diags)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------- random acyclic netlists with embedded constants ---------- *)

(* Every gate draws fan-ins from already-built nodes, so the graph is
   acyclic by construction; a few Const generators seed known values
   for the ternary domain to propagate. *)
let random_netlist rng =
  let nl = Netlist.create () in
  let pool = ref [] in
  let n_inputs = 2 + Rng.int rng 5 in
  for i = 0 to n_inputs - 1 do
    pool := Netlist.add nl ~name:(Printf.sprintf "i%d" i) Netlist.Input [||]
            :: !pool
  done;
  for _ = 1 to Rng.int rng 3 do
    pool := Netlist.add nl (Netlist.Const (Rng.bool rng)) [||] :: !pool
  done;
  let pick () =
    let l = !pool in
    List.nth l (Rng.int rng (List.length l))
  in
  let n_gates = 5 + Rng.int rng 30 in
  for _ = 1 to n_gates do
    let kind =
      match Rng.int rng 9 with
      | 0 -> Netlist.Not
      | 1 -> Netlist.And
      | 2 -> Netlist.Or
      | 3 -> Netlist.Nand
      | 4 -> Netlist.Nor
      | 5 -> Netlist.Xor
      | 6 -> Netlist.Xnor
      | 7 -> Netlist.Maj
      | _ -> Netlist.Buf
    in
    let fanins = Array.init (Netlist.arity kind) (fun _ -> pick ()) in
    pool := Netlist.add nl kind fanins :: !pool
  done;
  (* a couple of outputs so the netlist is not trivially dead *)
  for _ = 1 to 2 do
    ignore (Netlist.add nl Netlist.Output [| pick () |])
  done;
  nl

(* ---------- const domain: soundness against simulation ---------- *)

(* Any node the domain claims constant must evaluate to that constant
   under every simulated vector. Probed by adding an Output marker per
   claimed node (after solving) and comparing simulation results. *)
let test_const_sound_vs_sim () =
  for seed = 1 to 25 do
    let rng = Rng.create seed in
    let nl = random_netlist rng in
    let facts = Const_dom.solve nl in
    let n_outs_before = List.length (Netlist.outputs nl) in
    let probes = ref [] in
    Array.iteri
      (fun i f ->
        match (f, Netlist.kind nl i) with
        | (Const_dom.Zero | Const_dom.One), Netlist.Output -> ()
        | (Const_dom.Zero | Const_dom.One), _ ->
            ignore (Netlist.add nl Netlist.Output [| i |]);
            probes := (i, f) :: !probes
        | Const_dom.Unknown, _ -> ())
      facts;
    let probes = List.rev !probes in
    let n_in = List.length (Netlist.inputs nl) in
    for trial = 1 to 8 do
      ignore trial;
      let v = Array.init n_in (fun _ -> Rng.bool rng) in
      let outs = Sim.eval nl v in
      List.iteri
        (fun k (node, fact) ->
          let got = outs.(n_outs_before + k) in
          let want = fact = Const_dom.One in
          if got <> want then
            Alcotest.failf
              "seed %d: node %d claimed %s but simulates to %b" seed node
              (Const_dom.value_name fact) got)
        probes
    done
  done

let test_const_check_and_fold () =
  (* And(x, 0) is forced to 0 with x unknown: AI-CONST-01, witness
     chasing back to the Const generator *)
  let nl = Netlist.create () in
  let x = Netlist.add nl ~name:"x" Netlist.Input [||] in
  let c0 = Netlist.add nl (Netlist.Const false) [||] in
  let g = Netlist.add nl Netlist.And [| x; c0 |] in
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| g |]);
  let diags = Const_dom.check nl in
  checki "AI-CONST-01 fires" 2 (count_rule "AI-CONST-01" diags);
  List.iter
    (fun d ->
      checkb "witness non-empty" true (d.Diag.witness <> []);
      checkb "witness rendered in text" true
        (contains (Diag.to_string d) "[witness: "))
    diags;
  (* folding rewrites the forced gate to a Const cell and preserves
     the simulated function *)
  let folded, st = Const_dom.fold nl in
  checkb "folded at least the gate" true (st.Const_dom.folded >= 1);
  checkb "live cone shrank" true
    (st.Const_dom.live_after <= st.Const_dom.live_before);
  checkb "function preserved" true (Sim.equivalent nl folded)

let test_fold_preserves_benchmarks () =
  List.iter
    (fun name ->
      let aoi = Circuits.benchmark name in
      let folded, _ = Const_dom.fold aoi in
      checkb (name ^ " fold preserves function") true
        (Sim.equivalent aoi folded))
    [ "adder8"; "decoder"; "c432" ]

(* ---------- phase domain ---------- *)

let test_phase_accepts_bundled () =
  List.iter
    (fun name ->
      let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
      checki (name ^ " balanced post-insertion") 0
        (List.length (Phase_dom.check aqfp)))
    [ "adder8"; "decoder"; "c432" ]

let test_phase_rejects_unbalance () =
  (* a -> splitter -> {buf -> g, g}: the two fan-ins of g arrive at
     phases 2 and 1 — the earliest unbalanced reconvergence *)
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let s = Netlist.add nl (Netlist.Splitter 2) [| a |] in
  let b = Netlist.add nl Netlist.Buf [| s |] in
  let g = Netlist.add nl Netlist.And [| b; s |] in
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| g |]);
  let diags = Phase_dom.check nl in
  checki "AI-PHASE-01 fires exactly once" 1 (count_rule "AI-PHASE-01" diags);
  let d = List.hd diags in
  checkb "error severity" true (d.Diag.severity = Diag.Error);
  checkb "witness non-empty" true (d.Diag.witness <> []);
  checkb "located at the reconvergence" true (d.Diag.loc = Diag.Node g)

(* ---------- load domain ---------- *)

let test_load_wasted_sink () =
  (* splitter delivers two sinks but only one can reach an output *)
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let s = Netlist.add nl (Netlist.Splitter 2) [| a |] in
  let b1 = Netlist.add nl Netlist.Buf [| s |] in
  let b2 = Netlist.add nl Netlist.Buf [| s |] in
  ignore b2 (* no consumer: provably wasted *);
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| b1 |]);
  let diags = Load_dom.check nl in
  checki "AI-LOAD-01 fires exactly once" 1 (count_rule "AI-LOAD-01" diags);
  checkb "witness non-empty" true ((List.hd diags).Diag.witness <> [])

(* ---------- polarity domain ---------- *)

let test_polar_cancelling_pair () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let n1 = Netlist.add nl Netlist.Not [| a |] in
  let n2 = Netlist.add nl Netlist.Not [| n1 |] in
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| n2 |]);
  let diags = Polar_dom.check nl in
  checki "AI-POLAR-01 fires exactly once" 1 (count_rule "AI-POLAR-01" diags);
  let d = List.hd diags in
  checkb "flags the second inverter" true (d.Diag.loc = Diag.Node n2);
  checkb "witness non-empty" true (d.Diag.witness <> []);
  (* a single inverter is legitimate *)
  let nl1 = Netlist.create () in
  let a = Netlist.add nl1 Netlist.Input [||] in
  let n = Netlist.add nl1 Netlist.Not [| a |] in
  ignore (Netlist.add nl1 Netlist.Output [| n |]);
  checki "single Not clean" 0 (List.length (Polar_dom.check nl1))

(* ---------- observability domain + the lint upgrade ---------- *)

let test_obs_blocked_by_constant () =
  (* x = Or(a,b) only feeds And(x, 0): provably unobservable *)
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Input [||] in
  let c0 = Netlist.add nl (Netlist.Const false) [||] in
  let x = Netlist.add nl Netlist.Or [| a; b |] in
  let g = Netlist.add nl Netlist.And [| x; c0 |] in
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| g |]);
  let diags = Obs_dom.check nl in
  checki "AI-OBS-01 fires exactly once" 1 (count_rule "AI-OBS-01" diags);
  let d = List.hd diags in
  checkb "flags the blocked gate" true (d.Diag.loc = Diag.Node x);
  checkb "witness names the blocker" true (d.Diag.witness <> [])

let test_lint_dead_transitive_with_witness () =
  (* g1 -> g2 dead-ends: the old "no consumers" lint saw only g2; the
     observability upgrade flags the whole dead chain with witnesses *)
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Input [||] in
  let live = Netlist.add nl Netlist.And [| a; b |] in
  let g1 = Netlist.add nl Netlist.Or [| a; b |] in
  let g2 = Netlist.add nl Netlist.Buf [| g1 |] in
  ignore g2;
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| live |]);
  let diags = Lint.check nl in
  checki "both dead nodes flagged" 2 (count_rule "NL-DEAD-01" diags);
  List.iter
    (fun d ->
      if d.Diag.rule = "NL-DEAD-01" then
        checkb "dead witness non-empty" true (d.Diag.witness <> []))
    diags

(* ---------- tiers ---------- *)

let test_lint_tiers () =
  (* x AND NOT x: the Full tier proves NL-CONST-01 through the AIG;
     the Fast tier skips it (AI-CONST-01 owns cheap constants) *)
  let nl = Netlist.create () in
  let x = Netlist.add nl ~name:"x" Netlist.Input [||] in
  let nx = Netlist.add nl Netlist.Not [| x |] in
  let z = Netlist.add nl Netlist.And [| x; nx |] in
  ignore (Netlist.add nl ~name:"zero" Netlist.Output [| z |]);
  checki "Full tier proves the constant" 1
    (count_rule "NL-CONST-01" (Lint.check ~tier:Check.Full nl));
  checki "Fast tier skips the AIG lint" 0
    (count_rule "NL-CONST-01" (Lint.check ~tier:Check.Fast nl));
  (* the report header records the tier *)
  let rep =
    Check.run ~header:[ ("tier", Check.tier_name Check.Fast) ]
      [ Check.pass "lint" (fun () -> Lint.check ~tier:Check.Fast nl) ]
  in
  checkb "header rendered in text" true
    (contains (Check.render_text rep) "# tier: fast");
  checkb "header rendered in json" true
    (contains (Check.render_json rep) "{\"header\":{\"tier\":\"fast\"}}")

(* ---------- determinism across worker counts ---------- *)

let test_jobs_byte_identical () =
  let render nl =
    Check.render_text (Check.run (Absint_check.passes nl))
  in
  List.iter
    (fun name ->
      let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
      Parallel.set_jobs 1;
      let r1 = render aqfp in
      Parallel.set_jobs 4;
      let r4 = render aqfp in
      Parallel.set_jobs 1;
      checks (name ^ " byte-identical at jobs 1 vs 4") r1 r4)
    [ "adder8"; "c432" ];
  (* and on seeded random netlists, where facts are less trivial *)
  for seed = 1 to 10 do
    let nl = random_netlist (Rng.create (100 + seed)) in
    Parallel.set_jobs 1;
    let r1 = render nl in
    Parallel.set_jobs 4;
    let r4 = render nl in
    Parallel.set_jobs 1;
    checks (Printf.sprintf "random %d byte-identical" seed) r1 r4
  done

(* ---------- memo cache transparency ---------- *)

let test_absint_cache_transparent () =
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "adder8") in
  let store : (string, Diag.t list) Hashtbl.t = Hashtbl.create 8 in
  let hits = ref 0 and misses = ref 0 in
  let cache =
    {
      Absint_check.find =
        (fun k ->
          match Hashtbl.find_opt store k with
          | Some _ as r ->
              incr hits;
              r
          | None ->
              incr misses;
              None);
      store = (fun k ds -> Hashtbl.replace store k ds);
    }
  in
  let cold = Check.run (Absint_check.passes ~cache aqfp) in
  checki "cold run misses every domain" 5 !misses;
  checki "cold run hits nothing" 0 !hits;
  let warm = Check.run (Absint_check.passes ~cache aqfp) in
  checki "warm run hits every domain" 5 !hits;
  checks "warm report byte-identical"
    (Check.render_text cold) (Check.render_text warm)

(* ---------- rule registry ---------- *)

let test_registry_health () =
  checkb "self_check clean" true (Rules.self_check () = []);
  (* every emitted AI-* rule resolves, and explain formats it *)
  List.iter
    (fun id ->
      checkb (id ^ " registered") true (Rules.find id <> None);
      match Rules.explain id with
      | Ok s -> checkb (id ^ " explained") true (contains s id)
      | Error e -> Alcotest.fail e)
    [ "AI-CONST-01"; "AI-PHASE-01"; "AI-OBS-01"; "AI-LOAD-01"; "AI-POLAR-01";
      "NL-DEAD-01"; "NL-CONST-01"; "EQ-DIFF-01"; "DB-VERSION-01" ];
  checkb "unknown id rejected" true
    (match Rules.explain "ZZ-NOPE-99" with Error _ -> true | Ok _ -> false);
  (* the generated catalog lists every registered rule *)
  let md = Rules.catalog_markdown () in
  List.iter
    (fun r -> checkb (r.Rules.id ^ " in catalog") true (contains md r.Rules.id))
    Rules.all

let () =
  Alcotest.run "absint"
    [
      ( "const",
        [
          Alcotest.test_case "sound vs simulation" `Quick
            test_const_sound_vs_sim;
          Alcotest.test_case "check + fold" `Quick test_const_check_and_fold;
          Alcotest.test_case "fold preserves benchmarks" `Quick
            test_fold_preserves_benchmarks;
        ] );
      ( "phase",
        [
          Alcotest.test_case "accepts bundled designs" `Quick
            test_phase_accepts_bundled;
          Alcotest.test_case "rejects seeded unbalance" `Quick
            test_phase_rejects_unbalance;
        ] );
      ( "load", [ Alcotest.test_case "wasted sink" `Quick test_load_wasted_sink ] );
      ( "polar",
        [ Alcotest.test_case "cancelling pair" `Quick test_polar_cancelling_pair ]
      );
      ( "obs",
        [
          Alcotest.test_case "blocked by constant" `Quick
            test_obs_blocked_by_constant;
          Alcotest.test_case "lint dead upgrade" `Quick
            test_lint_dead_transitive_with_witness;
        ] );
      ( "tiers", [ Alcotest.test_case "fast vs full" `Quick test_lint_tiers ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 4" `Quick test_jobs_byte_identical;
          Alcotest.test_case "memo cache transparent" `Quick
            test_absint_cache_transparent;
        ] );
      ( "registry",
        [ Alcotest.test_case "health + explain" `Quick test_registry_health ]
      );
    ]
