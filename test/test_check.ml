(* Tests for the sf_check static-verification subsystem: each seeded
   violation class must be caught by its rule id (and by nothing
   louder), the LVS-lite extraction must catch opens/shorts/swaps on
   routed layouts, and reports must be byte-identical at any worker
   count. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let count_rule rule diags =
  List.length (List.filter (fun d -> d.Diag.rule = rule) diags)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let errors diags = Diag.count Diag.Error diags

(* ---------- diagnostics type ---------- *)

let test_diag_render () =
  let d = Diag.error ~rule:"NL-ARITY-01" (Diag.Node 3) "bad arity %d" 7 in
  checks "text" "error   NL-ARITY-01 @ node 3: bad arity 7" (Diag.to_string d);
  let j = Diag.to_json d in
  checkb "json has rule" true
    (String.length j > 0 && j.[0] = '{'
    && contains j "\"rule\":\"NL-ARITY-01\"");
  let quoted = Diag.warning ~rule:"X-01" Diag.Global "say \"hi\"\n" in
  checkb "json escapes" true
    (contains (Diag.to_json quoted) "\\\"hi\\\"\\n")

(* ---------- netlist lints ---------- *)

(* Splitter 3 that really drives only two consumers *)
let test_splitter_fanout_mismatch () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let s = Netlist.add nl (Netlist.Splitter 3) [| a |] in
  let b1 = Netlist.add nl Netlist.Buf [| s |] in
  let b2 = Netlist.add nl Netlist.Buf [| s |] in
  ignore (Netlist.add nl Netlist.Output [| b1 |]);
  ignore (Netlist.add nl Netlist.Output [| b2 |]);
  let diags = Netlist.validate_diags nl in
  checki "NL-FANOUT-01 fires exactly once" 1 (count_rule "NL-FANOUT-01" diags);
  checki "no other errors" 1 (errors diags);
  (* legacy wrapper agrees *)
  checkb "validate is Error" true
    (match Netlist.validate nl with Error _ -> true | Ok _ -> false)

let test_lint_clean_and_dead () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Input [||] in
  let x = Netlist.add nl Netlist.And [| a; b |] in
  let dead = Netlist.add nl Netlist.Or [| a; b |] in
  ignore dead;
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| x |]);
  let diags = Lint.check nl in
  checki "no errors" 0 (errors diags);
  checki "NL-DEAD-01 once" 1 (count_rule "NL-DEAD-01" diags);
  (* duplicate names *)
  let nl2 = Netlist.create () in
  let a = Netlist.add nl2 ~name:"sig" Netlist.Input [||] in
  let n = Netlist.add nl2 ~name:"sig" Netlist.Not [| a |] in
  ignore (Netlist.add nl2 Netlist.Output [| n |]);
  checki "NL-NAME-01 once" 1 (count_rule "NL-NAME-01" (Lint.check nl2))

let test_lint_structural_dup_and_const () =
  (* NL-DUP-01: two gates computing the same function of the same
     fan-ins (And a b / And b a — commutatively identical) *)
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Input [||] in
  let x1 = Netlist.add nl Netlist.And [| a; b |] in
  let x2 = Netlist.add nl Netlist.And [| b; a |] in
  (* same fan-ins, different function: must NOT fire *)
  let x3 = Netlist.add nl Netlist.Or [| a; b |] in
  let m = Netlist.add nl Netlist.Maj [| x1; x2; x3 |] in
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| m |]);
  let diags = Lint.check nl in
  checki "NL-DUP-01 fires exactly once" 1 (count_rule "NL-DUP-01" diags);
  checki "no NL-CONST-01" 0 (count_rule "NL-CONST-01" diags);
  (* parallel buffers are AQFP pipelining, never duplicates *)
  let nlb = Netlist.create () in
  let a = Netlist.add nlb Netlist.Input [||] in
  let s = Netlist.add nlb (Netlist.Splitter 2) [| a |] in
  let b1 = Netlist.add nlb Netlist.Buf [| s |] in
  let b2 = Netlist.add nlb Netlist.Buf [| s |] in
  ignore (Netlist.add nlb Netlist.Output [| b1 |]);
  ignore (Netlist.add nlb Netlist.Output [| b2 |]);
  checki "buffers exempt from NL-DUP-01" 0
    (count_rule "NL-DUP-01" (Lint.check nlb));
  (* NL-CONST-01: x AND NOT x is provably constant 0 *)
  let nlc = Netlist.create () in
  let x = Netlist.add nlc ~name:"x" Netlist.Input [||] in
  let nx = Netlist.add nlc Netlist.Not [| x |] in
  let z = Netlist.add nlc Netlist.And [| x; nx |] in
  ignore (Netlist.add nlc ~name:"zero" Netlist.Output [| z |]);
  let diags = Lint.check nlc in
  checki "NL-CONST-01 fires exactly once" 1 (count_rule "NL-CONST-01" diags);
  checki "no NL-DUP-01 here" 0 (count_rule "NL-DUP-01" diags)

(* ---------- AQFP legality ---------- *)

(* legal chain: in -> buf -> buf -> out *)
let balanced_chain () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let b1 = Netlist.add nl Netlist.Buf [| a |] in
  let b2 = Netlist.add nl Netlist.Buf [| b1 |] in
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| b2 |]);
  ignore (Netlist.levelize nl);
  (nl, b2)

let test_aqfp_phase_misalignment () =
  let nl, b2 = balanced_chain () in
  checki "clean chain" 0 (List.length (Aqfp_check.check nl));
  Netlist.set_phase nl b2 3 (* was 2: fanin now two phases above *);
  let diags = Aqfp_check.check nl in
  checki "AQFP-PHASE-01 fires exactly once" 1
    (count_rule "AQFP-PHASE-01" diags);
  checki "nothing else fires" 1 (List.length diags)

let test_aqfp_fanout_violation () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Buf [| a |] in
  let c1 = Netlist.add nl Netlist.Buf [| b |] in
  let c2 = Netlist.add nl Netlist.Buf [| b |] in
  ignore (Netlist.add nl Netlist.Output [| c1 |]);
  ignore (Netlist.add nl Netlist.Output [| c2 |]);
  ignore (Netlist.levelize nl);
  let diags = Aqfp_check.check nl in
  checki "AQFP-FANOUT-01 fires exactly once" 1
    (count_rule "AQFP-FANOUT-01" diags);
  checki "nothing else fires" 1 (List.length diags)

let test_aqfp_output_balancing () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let s = Netlist.add nl (Netlist.Splitter 2) [| a |] in
  let b1 = Netlist.add nl Netlist.Buf [| s |] in
  let b2 = Netlist.add nl Netlist.Buf [| b1 |] in
  (* early output: retires at phase 2 while the design ends at 3 *)
  let early = Netlist.add nl Netlist.Buf [| s |] in
  ignore (Netlist.add nl Netlist.Output [| b2 |]);
  ignore (Netlist.add nl Netlist.Output [| early |]);
  ignore (Netlist.levelize nl);
  let diags = Aqfp_check.check nl in
  checki "AQFP-PHASE-02 fires exactly once" 1
    (count_rule "AQFP-PHASE-02" diags);
  checki "nothing else fires" 1 (List.length diags)

(* ---------- equivalence guards ---------- *)

let two_gate_pair kind_a kind_b =
  let mk kind =
    let nl = Netlist.create () in
    let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
    let b = Netlist.add nl ~name:"b" Netlist.Input [||] in
    let g = Netlist.add nl kind [| a; b |] in
    ignore (Netlist.add nl ~name:"y" Netlist.Output [| g |]);
    nl
  in
  (mk kind_a, mk kind_b)

let test_equiv_guard () =
  let same_a, same_b = two_gate_pair Netlist.And Netlist.And in
  checki "equal pair is clean" 0
    (List.length (Equiv.check_pair ~stage:"t" same_a same_b));
  let diff_a, diff_b = two_gate_pair Netlist.And Netlist.Or in
  let diags = Equiv.check_pair ~stage:"t" diff_a diff_b in
  checki "EQ-DIFF-01 fires exactly once" 1 (count_rule "EQ-DIFF-01" diags);
  (* the synthesis driver runs the guards and a real synthesis is clean *)
  let aoi = Circuits.kogge_stone_adder 4 in
  let _, report = Synth_flow.run ~check:true aoi in
  checki "synthesis guards clean" 0 (errors report.Synth_flow.guard_diags)

(* xor association: equivalent, but structurally different enough
   that nothing collapses by hashing alone *)
let xor3_pair () =
  let mk left =
    let nl = Netlist.create () in
    let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
    let b = Netlist.add nl ~name:"b" Netlist.Input [||] in
    let c = Netlist.add nl ~name:"c" Netlist.Input [||] in
    let o =
      if left then
        Netlist.add nl Netlist.Xor [| Netlist.add nl Netlist.Xor [| a; b |]; c |]
      else
        Netlist.add nl Netlist.Xor [| a; Netlist.add nl Netlist.Xor [| b; c |] |]
    in
    ignore (Netlist.add nl ~name:"y" Netlist.Output [| o |]);
    nl
  in
  (mk true, mk false)

let severity_of rule diags =
  match List.find_opt (fun d -> d.Diag.rule = rule) diags with
  | Some d -> Some d.Diag.severity
  | None -> None

let test_equiv_engines () =
  let l, r = xor3_pair () in
  (* pure BDD with a starved budget: sampled, downgrade reported *)
  let d = Equiv.check_pair ~engine:`Bdd ~max_nodes:1 ~stage:"t" l r in
  checki "EQ-FALLBACK-01 once" 1 (count_rule "EQ-FALLBACK-01" d);
  checkb "fallback escalated to warning" true
    (severity_of "EQ-FALLBACK-01" d = Some Diag.Warning);
  (* auto with the same starved BDD: SAT completes the proof *)
  checki "auto proves what bdd sampled" 0
    (List.length (Equiv.check_pair ~engine:`Auto ~max_nodes:1 ~stage:"t" l r));
  checki "sat proves it too" 0
    (List.length (Equiv.check_pair ~engine:`Sat ~stage:"t" l r));
  (* starved SAT: EQ-TIMEOUT-01 warning carrying the budget *)
  let d = Equiv.check_pair ~engine:`Sat ~conflict_budget:0 ~stage:"t" l r in
  checki "EQ-TIMEOUT-01 once" 1 (count_rule "EQ-TIMEOUT-01" d);
  checkb "timeout is a warning" true
    (severity_of "EQ-TIMEOUT-01" d = Some Diag.Warning);
  checkb "budget value in message" true
    (match List.find_opt (fun x -> x.Diag.rule = "EQ-TIMEOUT-01") d with
    | Some x -> contains x.Diag.message "(0)"
    | None -> false);
  (* a real difference under the SAT engine is a proven, replayed cex *)
  let diff_a, diff_b = two_gate_pair Netlist.And Netlist.Or in
  let d = Equiv.check_pair ~engine:`Sat ~stage:"t" diff_a diff_b in
  checki "EQ-DIFF-01 once under sat" 1 (count_rule "EQ-DIFF-01" d);
  checki "no EQ-CEX-01" 0 (count_rule "EQ-CEX-01" d)

let test_equiv_proof_cache () =
  let mem : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let hits = ref 0 and stores = ref 0 in
  let cache =
    {
      Equiv.find =
        (fun k ->
          let r = Hashtbl.find_opt mem k in
          (match r with Some _ -> incr hits | None -> ());
          r);
      store =
        (fun k v ->
          incr stores;
          Hashtbl.replace mem k v);
    }
  in
  let l, r = xor3_pair () in
  let d1 = Equiv.check_pair ~cache ~stage:"t" l r in
  checki "cold run stores the proof" 1 !stores;
  checki "cold run has no hits" 0 !hits;
  let d2 = Equiv.check_pair ~cache ~stage:"t" l r in
  checki "warm run stores nothing new" 1 !stores;
  checki "warm run hits" 1 !hits;
  checkb "verdicts identical warm vs cold" true (d1 = d2);
  (* cached counterexamples replay on the way back in *)
  let diff_a, diff_b = two_gate_pair Netlist.And Netlist.Or in
  let d3 = Equiv.check_pair ~cache ~stage:"t" diff_a diff_b in
  let d4 = Equiv.check_pair ~cache ~stage:"t" diff_a diff_b in
  checki "diff cached too" 2 !stores;
  checkb "cached diff identical" true (d3 = d4);
  checki "EQ-DIFF-01 from cache" 1 (count_rule "EQ-DIFF-01" d4)

(* ---------- placement audit ---------- *)

(* two-bit column design: 2 inputs, 2 buffers, 2 outputs; returns the
   netlist and a placed problem *)
let two_lane_problem () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Input [||] in
  let ba = Netlist.add nl Netlist.Buf [| a |] in
  let bb = Netlist.add nl Netlist.Buf [| b |] in
  ignore (Netlist.add nl ~name:"oa" Netlist.Output [| ba |]);
  ignore (Netlist.add nl ~name:"ob" Netlist.Output [| bb |]);
  ignore (Netlist.levelize nl);
  let p = Problem.of_netlist Tech.default nl in
  (nl, p)

let test_place_audit () =
  let nl, p = two_lane_problem () in
  checki "clean placement" 0 (List.length (Place_audit.check nl p));
  (* overlap: slam the second cell of row 0 onto the first *)
  let saved = Problem.copy_positions p in
  let row0 = p.Problem.row_cells.(0) in
  p.Problem.cells.(row0.(1)).Problem.x <- p.Problem.cells.(row0.(0)).Problem.x;
  let diags = Place_audit.check nl p in
  checki "PL-OVERLAP-01 fires exactly once" 1 (count_rule "PL-OVERLAP-01" diags);
  checki "nothing else fires" 1 (List.length diags);
  Problem.restore_positions p saved;
  (* row/phase mismatch *)
  let buf = p.Problem.row_cells.(1).(0) in
  let node = p.Problem.cells.(buf).Problem.node in
  let old_phase = Netlist.phase nl node in
  Netlist.set_phase nl node 5;
  let diags = Place_audit.check nl p in
  checki "PL-ROW-01 fires exactly once" 1 (count_rule "PL-ROW-01" diags);
  Netlist.set_phase nl node old_phase;
  (* off-grid *)
  p.Problem.cells.(row0.(0)).Problem.x <- 3.7;
  let diags = Place_audit.check nl p in
  checki "PL-GRID-01 fires exactly once" 1 (count_rule "PL-GRID-01" diags);
  Problem.restore_positions p saved

(* ---------- LVS-lite ---------- *)

(* pin coordinates, mirroring the router's conventions *)
let src_pin p ni =
  let e = p.Problem.nets.(ni) in
  let c = p.Problem.cells.(e.Problem.src) in
  ( Problem.pin_x p ni `Src,
    Problem.row_top p c.Problem.row +. c.Problem.lib.Cell.height )

let dst_pin p ni =
  let e = p.Problem.nets.(ni) in
  let c = p.Problem.cells.(e.Problem.dst) in
  (Problem.pin_x p ni `Dst, Problem.row_top p c.Problem.row)

(* hand-drawn rectilinear route src-pin -> dx at height ym -> dst-pin *)
let fake_route p ~net ~to_net ~ym =
  let sx, sy = src_pin p net in
  let dx, dy = dst_pin p to_net in
  let points =
    if Float.abs (sx -. dx) < 1e-9 then [ (sx, sy); (dx, dy) ]
    else [ (sx, sy); (sx, ym); (dx, ym); (dx, dy) ]
  in
  { Router.net; points; vias = 2; length = 0.0 }

let routed_two_lane () =
  let nl, p = two_lane_problem () in
  ignore (Placer.place Placer.Superflow p);
  let routing = Router.route_all p in
  (nl, p, routing)

let test_lvs_clean () =
  let _, p, routing = routed_two_lane () in
  let layout = Layout.build p routing in
  checki "clean routed layout" 0 (List.length (Lvs.check p layout))

let test_lvs_open () =
  let _, p, routing = routed_two_lane () in
  let layout = Layout.build p routing in
  (* erase net 0's drawn geometry *)
  let keep (w : Layout.wire) = w.Layout.net <> 0 in
  let layout' =
    {
      layout with
      Layout.wires = Array.of_list (List.filter keep (Array.to_list layout.Layout.wires));
      vias =
        Array.of_list
          (List.filter (fun v -> v.Layout.net <> 0) (Array.to_list layout.Layout.vias));
    }
  in
  let diags = Lvs.check p layout' in
  checki "LVS-OPEN-01 fires exactly once" 1 (count_rule "LVS-OPEN-01" diags);
  checki "nothing else fires" 1 (List.length diags)

let test_lvs_swap () =
  let _, p, routing = routed_two_lane () in
  (* nets 0 and 1 both span row 0 -> row 1; redraw them crossed, at
     different jog heights so the two drawn nets stay separate *)
  let _, sy = src_pin p 0 in
  let routes =
    Array.map
      (fun rt ->
        match rt.Router.net with
        | 0 -> fake_route p ~net:0 ~to_net:1 ~ym:(sy +. 7.0)
        | 1 -> fake_route p ~net:1 ~to_net:0 ~ym:(sy +. 13.0)
        | _ -> rt)
      routing.Router.routes
  in
  let layout = Layout.build p { routing with Router.routes } in
  let diags = Lvs.check p layout in
  checki "LVS-SWAP-01 fires exactly twice (both directions)" 2
    (count_rule "LVS-SWAP-01" diags);
  checki "no opens reported on a swap" 0 (count_rule "LVS-OPEN-01" diags)

let test_lvs_short_and_float () =
  let _, p, routing = routed_two_lane () in
  let layout = Layout.build p routing in
  (* a drawn bridge between the two sink pins shorts both nets *)
  let x0, y0 = dst_pin p 0 and x1, y1 = dst_pin p 1 in
  checkb "sinks share a row" true (Float.abs (y0 -. y1) < 1e-9);
  let bridge = { Layout.net = 0; layer = 10; a = Geom.pt x0 y0; b = Geom.pt x1 y1 } in
  (* plus a floating stub far away from everything *)
  let stub =
    { Layout.net = 0; layer = 10; a = Geom.pt 900.0 900.0; b = Geom.pt 950.0 900.0 }
  in
  let layout' =
    { layout with Layout.wires = Array.append layout.Layout.wires [| bridge; stub |] }
  in
  let diags = Lvs.check p layout' in
  checki "LVS-SHORT-01 fires exactly once" 1 (count_rule "LVS-SHORT-01" diags);
  checki "LVS-FLOAT-01 fires exactly once" 1 (count_rule "LVS-FLOAT-01" diags);
  checki "opens suppressed on shorted nets" 0 (count_rule "LVS-OPEN-01" diags)

(* ---------- full gate + determinism ---------- *)

let test_full_gate_clean_and_deterministic () =
  let render jobs =
    let r =
      Flow.run ~jobs ~check:true (Circuits.benchmark "adder8")
    in
    match r.Flow.check_report with
    | None -> Alcotest.fail "check report missing"
    | Some rep ->
        checkb "adder8 gate is clean" true (Check.ok rep);
        (Check.render_text rep, Check.render_json rep)
  in
  let t1, j1 = render 1 in
  let t4, j4 = render 4 in
  Parallel.auto_jobs ();
  checks "text report identical at jobs=1/jobs=4" t1 t4;
  checks "json report identical at jobs=1/jobs=4" j1 j4

let test_crashing_pass_is_contained () =
  let rep = Check.run [ Check.pass "boom" (fun () -> failwith "nope") ] in
  checki "CHECK-CRASH-01 once" 1 (count_rule "CHECK-CRASH-01" rep.Check.diags);
  checkb "gate fails" false (Check.ok rep)

(* ---------- fuzz: checker must survive Fault-mutated netlists ---------- *)

let test_fuzz_fault_mutations () =
  let aqfp = Synth_flow.run_quiet (Circuits.kogge_stone_adder 4) in
  let faults = Fault.all_faults aqfp in
  let n_checked = ref 0 in
  List.iteri
    (fun i f ->
      if i mod 7 = 0 then begin
        let mutated = Netlist.copy aqfp in
        (* pin the faulted gate's output: retype to a constant, like a
           JJ stuck in one flux state *)
        (match Netlist.kind mutated f.Fault.node with
        | Netlist.Input | Netlist.Output -> ()
        | _ ->
            Netlist.set_kind mutated f.Fault.node (Netlist.Const f.Fault.stuck_at);
            Netlist.set_fanins mutated f.Fault.node [||]);
        (* every pass family must produce diagnostics, not exceptions *)
        let d1 = Lint.check mutated in
        let d2 = Aqfp_check.check mutated in
        ignore (List.length d1 + List.length d2);
        incr n_checked
      end)
    faults;
  checkb "fuzzed some netlists" true (!n_checked > 20)

let () =
  Alcotest.run "check"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "render text and json" `Quick test_diag_render;
          Alcotest.test_case "crashing pass contained" `Quick
            test_crashing_pass_is_contained;
        ] );
      ( "netlist lints",
        [
          Alcotest.test_case "splitter fanout mismatch (NL-FANOUT-01)" `Quick
            test_splitter_fanout_mismatch;
          Alcotest.test_case "dead logic and duplicate names" `Quick
            test_lint_clean_and_dead;
          Alcotest.test_case
            "structural duplicates + constant outputs (NL-DUP-01, NL-CONST-01)"
            `Quick test_lint_structural_dup_and_const;
        ] );
      ( "aqfp legality",
        [
          Alcotest.test_case "phase misalignment (AQFP-PHASE-01)" `Quick
            test_aqfp_phase_misalignment;
          Alcotest.test_case "fan-out > 1 (AQFP-FANOUT-01)" `Quick
            test_aqfp_fanout_violation;
          Alcotest.test_case "output balancing (AQFP-PHASE-02)" `Quick
            test_aqfp_output_balancing;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "guards (EQ-DIFF-01)" `Quick test_equiv_guard;
          Alcotest.test_case "engines (bdd/sat/auto, timeout, fallback)"
            `Quick test_equiv_engines;
          Alcotest.test_case "proof cache" `Quick test_equiv_proof_cache;
        ] );
      ( "placement audit",
        [
          Alcotest.test_case "overlap / row / grid rules" `Quick
            test_place_audit;
        ] );
      ( "lvs-lite",
        [
          Alcotest.test_case "clean routed layout" `Quick test_lvs_clean;
          Alcotest.test_case "open (LVS-OPEN-01)" `Quick test_lvs_open;
          Alcotest.test_case "swapped sinks (LVS-SWAP-01)" `Quick test_lvs_swap;
          Alcotest.test_case "short + float (LVS-SHORT-01)" `Quick
            test_lvs_short_and_float;
        ] );
      ( "full gate",
        [
          Alcotest.test_case "adder8 clean, reports identical at jobs=1/4"
            `Quick test_full_gate_clean_and_deterministic;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "Fault-mutated netlists never crash the checker"
            `Quick test_fuzz_fault_mutations;
        ] );
    ]
