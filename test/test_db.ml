(* Tests for sf_db: deterministic artifact codecs (exact round-trips,
   loud corruption failures), the content-addressed store, and the
   cached/resumable stage graph in Flow.run_staged. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let tmp_dir () =
  let f = Filename.temp_file "sfdb_test" "" in
  Sys.remove f;
  f

let with_db f =
  let dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      match Db.open_ dir with
      | Error d -> Alcotest.fail (Diag.to_string d)
      | Ok db -> f dir db)

let expect_rule name rule = function
  | Ok _ -> Alcotest.fail (name ^ ": expected a structured error")
  | Error d -> checks name rule d.Diag.rule

let gds_bytes layout = Bytes.to_string (Gds.to_bytes (Layout.to_gds layout))

(* ---------- codec round-trips ---------- *)

(* decode (encode x) must rebuild a value whose re-encoding is
   byte-identical to the first encoding *)
let roundtrip name (codec : 'a Artifact.codec) v =
  let bytes = codec.Artifact.encode v in
  match codec.Artifact.decode bytes with
  | Error d -> Alcotest.fail (name ^ ": " ^ Diag.to_string d)
  | Ok v' ->
      checkb (name ^ " re-encode byte-identical") true
        (String.equal bytes (codec.Artifact.encode v'));
      v'

let test_netlist_codec_all_benchmarks () =
  List.iter
    (fun name ->
      let nl = Circuits.benchmark name in
      let nl' = roundtrip ("netlist " ^ name) Artifact.netlist nl in
      checks (name ^ " same shape")
        (Format.asprintf "%a" Netlist.pp_stats nl)
        (Format.asprintf "%a" Netlist.pp_stats nl'))
    Circuits.benchmark_names

let flow_result =
  (* one shared flow run keeps the artifact tests fast *)
  lazy (Flow.run ~check:true (Circuits.benchmark "adder8"))

let test_flow_artifact_codecs () =
  let r = Lazy.force flow_result in
  ignore (roundtrip "aqfp netlist" Artifact.netlist r.Flow.aqfp_netlist);
  ignore (roundtrip "tech" Artifact.tech Tech.default);
  ignore (roundtrip "problem" Artifact.problem r.Flow.problem);
  ignore (roundtrip "placement" Artifact.placement r.Flow.placement);
  ignore (roundtrip "routing" Artifact.routing r.Flow.routing);
  ignore (roundtrip "sta" Artifact.sta r.Flow.sta);
  ignore (roundtrip "energy" Artifact.energy r.Flow.energy);
  ignore (roundtrip "synth report" Artifact.synth_report r.Flow.synth_report);
  ignore (roundtrip "drc" Artifact.drc r.Flow.violations);
  let layout' = roundtrip "layout" Artifact.layout r.Flow.layout in
  checkb "layout GDS identical" true
    (String.equal (gds_bytes r.Flow.layout) (gds_bytes layout'));
  match r.Flow.check_report with
  | None -> Alcotest.fail "flow ~check:true lost its report"
  | Some rep ->
      let rep' = roundtrip "check report" Artifact.check_report rep in
      checks "check report renders identically" (Check.render_text rep)
        (Check.render_text rep')

(* ---------- corruption: loud, structured failure ---------- *)

let test_corrupt_frames () =
  let codec = Artifact.netlist in
  let good = codec.Artifact.encode (Circuits.benchmark "adder8") in
  let n = String.length good in
  (* truncations at both interesting places *)
  expect_rule "cut mid-payload" "DB-TRUNC-01"
    (codec.Artifact.decode (String.sub good 0 (n - 10)));
  expect_rule "cut mid-header" "DB-TRUNC-01"
    (codec.Artifact.decode (String.sub good 0 10));
  expect_rule "cut before magic" "DB-MAGIC-01"
    (codec.Artifact.decode (String.sub good 0 3));
  expect_rule "garbage" "DB-MAGIC-01" (codec.Artifact.decode "not a frame");
  (* single flipped payload bit *)
  let flipped = Bytes.of_string good in
  let at = n - 20 in
  Bytes.set flipped at (Char.chr (Char.code (Bytes.get flipped at) lxor 1));
  expect_rule "bit flip" "DB-CKSUM-01"
    (codec.Artifact.decode (Bytes.to_string flipped));
  (* right payload, wrong wrapper *)
  let payload =
    match Codec.split good with
    | Ok (_, _, p) -> p
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  expect_rule "future version" "DB-VERSION-01"
    (codec.Artifact.decode (Codec.seal ~kind:codec.Artifact.kind ~version:999 payload));
  expect_rule "wrong kind" "DB-KIND-01"
    (codec.Artifact.decode
       (Codec.seal ~kind:"banana" ~version:codec.Artifact.version payload));
  (* structurally valid frame whose payload is noise *)
  expect_rule "noise payload" "DB-PARSE-01"
    (codec.Artifact.decode
       (Codec.seal ~kind:codec.Artifact.kind ~version:codec.Artifact.version
          "\x42\x42\x42\x42"))

let test_save_load_files () =
  let nl = Circuits.benchmark "decoder" in
  let path = Filename.temp_file "sfdb_artifact" ".sfo" in
  Artifact.save Artifact.netlist path nl;
  (match Artifact.load Artifact.netlist path with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok nl' ->
      checkb "file round-trip" true
        (String.equal
           (Artifact.netlist.Artifact.encode nl)
           (Artifact.netlist.Artifact.encode nl')));
  Sys.remove path;
  expect_rule "missing file" "DB-IO-01" (Artifact.load Artifact.netlist path)

(* ---------- the store ---------- *)

let test_store_objects () =
  with_db (fun dir db ->
      let bytes = Artifact.tech.Artifact.encode Tech.default in
      let h = Db.put_object db bytes in
      checks "content address" h (Db.hash bytes);
      (match Db.get_object db h with
      | Ok b -> checkb "bytes back" true (String.equal b bytes)
      | Error d -> Alcotest.fail (Diag.to_string d));
      expect_rule "unknown object" "DB-IO-01"
        (Db.get_object db (Db.hash "no such object"));
      (* tampered object files fail their address check... *)
      let path = Filename.concat (Filename.concat dir "objects") (h ^ ".sfo") in
      let oc = open_out_bin path in
      output_string oc "tampered";
      close_out oc;
      expect_rule "tampered object" "DB-CKSUM-01" (Db.get_object db h);
      (* ...and a re-put heals them in place *)
      ignore (Db.put_object db bytes);
      match Db.get_object db h with
      | Ok b -> checkb "healed" true (String.equal b bytes)
      | Error d -> Alcotest.fail (Diag.to_string d))

let test_store_stages () =
  with_db (fun _dir db ->
      let key = Db.stage_key [ "a"; "b" ] in
      checkb "distinct keys" true (key <> Db.stage_key [ "ab"; "" ]);
      checkb "miss" true (Db.get_stage db ~stage:"synth" ~key = None);
      Db.put_stage db ~stage:"synth" ~key
        ~slots:[ ("aqfp0", "h1"); ("report", "h2") ]
        ~scalars:[ ("lines", 3) ];
      match Db.get_stage db ~stage:"synth" ~key with
      | Some (slots, scalars) ->
          checki "slots" 2 (List.length slots);
          checks "slot hash" "h1" (List.assoc "aqfp0" slots);
          checki "scalar" 3 (List.assoc "lines" scalars)
      | None -> Alcotest.fail "stage entry lost")

let test_open_rejects_foreign_dirs () =
  let dir = tmp_dir () in
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "stray.txt") in
  output_string oc "hello";
  close_out oc;
  expect_rule "foreign dir" "DB-DIR-01" (Db.open_ dir);
  rm_rf dir;
  let dir = tmp_dir () in
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "meta") in
  output_string oc "sf_db 99\n";
  close_out oc;
  expect_rule "future db format" "DB-VERSION-01" (Db.open_ dir);
  rm_rf dir

(* ---------- the cached stage graph ---------- *)

let aoi () = Circuits.benchmark "adder8"

let outcome_names staged =
  List.map
    (fun (st, o) ->
      ( Flow.stage_name st,
        match o with Flow.Cached _ -> `Hit | Flow.Computed _ -> `Miss ))
    staged.Flow.outcomes

let test_warm_rerun_all_hits () =
  with_db (fun _dir db ->
      let cold = Flow.run ~check:true ~db (aoi ()) in
      checki "cold misses" 6 (Db.misses db);
      checki "cold hits" 0 (Db.hits db);
      Db.reset_log db;
      let warm = Flow.run ~check:true ~db (aoi ()) in
      checki "warm hits" 6 (Db.hits db);
      checki "warm misses" 0 (Db.misses db);
      checkb "GDS byte-identical" true
        (String.equal (gds_bytes cold.Flow.layout) (gds_bytes warm.Flow.layout));
      checks "check report byte-identical"
        (Check.render_text (Option.get cold.Flow.check_report))
        (Check.render_text (Option.get warm.Flow.check_report));
      checkb "same wirelength" true
        (cold.Flow.routing.Router.wirelength
        = warm.Flow.routing.Router.wirelength);
      (* a database-free run agrees with both *)
      let plain = Flow.run ~check:true (aoi ()) in
      checkb "cache matches plain run" true
        (String.equal (gds_bytes plain.Flow.layout) (gds_bytes warm.Flow.layout)))

let test_param_change_invalidates_suffix () =
  with_db (fun _dir db ->
      ignore (Flow.run ~db (aoi ()));
      Db.reset_log db;
      (* new seed: synthesis is untouched, everything after re-runs *)
      ignore (Flow.run ~db ~seed:7 (aoi ()));
      let log = List.map (fun (s, o, _) -> (s, o)) (Db.outcomes db) in
      checkb "synth hit" true (List.mem ("synth", Db.Hit) log);
      checkb "resyn hit" true (List.mem ("resyn", Db.Hit) log);
      checkb "place recomputed" true (List.mem ("place", Db.Miss) log);
      checkb "route recomputed" true (List.mem ("route", Db.Miss) log);
      checkb "layout recomputed" true (List.mem ("layout", Db.Miss) log);
      Db.reset_log db;
      (* ...and the original seed still hits everything *)
      ignore (Flow.run ~db (aoi ()));
      checki "original seed all hits" 5 (Db.hits db))

let test_partial_run_then_resume () =
  with_db (fun _dir db ->
      (* simulate an interrupted run: stop after placement *)
      (match Flow.run_staged ~db ~to_stage:Flow.Place (aoi ()) with
      | Error d -> Alcotest.fail (Diag.to_string d)
      | Ok staged ->
          checkb "no layout yet" true (staged.Flow.built = None);
          checkb "no result yet" true (staged.Flow.result = None);
          checki "three stages ran" 3 (List.length staged.Flow.outcomes));
      (* resuming finishes from the persisted prefix *)
      match Flow.run_staged ~db ~from_stage:Flow.Place (aoi ()) with
      | Error d -> Alcotest.fail (Diag.to_string d)
      | Ok staged ->
          Alcotest.(check (list (pair string bool)))
            "prefix loaded, suffix computed"
            [
              ("synth", true); ("resyn", true); ("place", true);
              ("route", false); ("layout", false);
            ]
            (List.map
               (fun (s, o) -> (s, o = `Hit))
               (outcome_names staged));
          let r = Option.get staged.Flow.result in
          let plain = Flow.run (aoi ()) in
          checkb "resumed bytes = uninterrupted bytes" true
            (String.equal (gds_bytes r.Flow.layout)
               (gds_bytes plain.Flow.layout)))

let test_from_stage_requires_cached_prefix () =
  with_db (fun _dir db ->
      expect_rule "empty db" "DB-FROM-01"
        (Flow.run_staged ~db ~from_stage:Flow.Route (aoi ())));
  expect_rule "from without db" "DB-RANGE-01"
    (Flow.run_staged ~from_stage:Flow.Place (aoi ()));
  with_db (fun _dir db ->
      expect_rule "from after to" "DB-RANGE-01"
        (Flow.run_staged ~db ~from_stage:Flow.Layout ~to_stage:Flow.Place
           (aoi ())))

let test_corrupt_cache_self_heals () =
  with_db (fun dir db ->
      let cold = Flow.run ~db (aoi ()) in
      (* flip the last byte of every stored object: every load now
         fails its checksum *)
      let objects = Filename.concat dir "objects" in
      Array.iter
        (fun e ->
          let path = Filename.concat objects e in
          let ic = open_in_bin path in
          let b = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
          close_in ic;
          let last = Bytes.length b - 1 in
          Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
          let oc = open_out_bin path in
          output_bytes oc b;
          close_out oc)
        (Sys.readdir objects);
      Db.reset_log db;
      let healed = Flow.run ~db (aoi ()) in
      checkb "recomputed, not crashed" true (Db.misses db > 0);
      checkb "warned about corruption" true (Db.warnings db <> []);
      checkb "bytes as before" true
        (String.equal (gds_bytes cold.Flow.layout) (gds_bytes healed.Flow.layout));
      Db.reset_log db;
      ignore (Flow.run ~db (aoi ()));
      checki "store healed: warm again" 0 (Db.misses db))

let () =
  Alcotest.run "sf_db"
    [
      ( "codec",
        [
          Alcotest.test_case "netlists (all benchmarks)" `Quick
            test_netlist_codec_all_benchmarks;
          Alcotest.test_case "flow artifacts" `Quick test_flow_artifact_codecs;
          Alcotest.test_case "corrupt frames" `Quick test_corrupt_frames;
          Alcotest.test_case "save/load files" `Quick test_save_load_files;
        ] );
      ( "store",
        [
          Alcotest.test_case "objects" `Quick test_store_objects;
          Alcotest.test_case "stages" `Quick test_store_stages;
          Alcotest.test_case "foreign dirs" `Quick test_open_rejects_foreign_dirs;
        ] );
      ( "staged flow",
        [
          Alcotest.test_case "warm rerun all hits" `Quick
            test_warm_rerun_all_hits;
          Alcotest.test_case "param change invalidates suffix" `Quick
            test_param_change_invalidates_suffix;
          Alcotest.test_case "partial run then resume" `Quick
            test_partial_run_then_resume;
          Alcotest.test_case "from needs cached prefix" `Quick
            test_from_stage_requires_cached_prefix;
          Alcotest.test_case "corrupt cache self-heals" `Quick
            test_corrupt_cache_self_heals;
        ] );
    ]
