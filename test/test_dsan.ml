(* The determinism sanitizer's own regression suite: every planted
   race must be caught with a correct witness, and clean parallel code
   must stay clean. This doubles as the CI meta-test that the detector
   still fires. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let with_jobs n f =
  Parallel.set_jobs n;
  Fun.protect ~finally:Parallel.auto_jobs f

let find_rule rule findings =
  List.filter (fun f -> f.Dsan.f_rule = rule) findings

(* ---- planted ownership violations ---- *)

let test_out_of_slice_write_caught () =
  let data = Array.make 16 0 in
  let _, findings =
    Dsan.with_sanitizer ~fuzz:false (fun () ->
        let v = Dsan.wrap ~label:"t.data" ~mode:Dsan.Slice data in
        with_jobs 1 (fun () ->
            ignore
              (Parallel.map_chunks ~label:"t.slice" ~chunk:4 ~n:16
                 (fun lo hi ->
                   for i = lo to hi - 1 do
                     Dsan.set v i i
                   done;
                   (* the planted race: chunk 1 ([4,8)) also writes
                      slot 12, which chunk 3 owns *)
                   if lo = 4 then Dsan.set v 12 99))))
  in
  match find_rule "DSAN-OWN-01" findings with
  | [ f ] ->
      Alcotest.(check string) "site" "t.slice" f.Dsan.f_site;
      Alcotest.(check string) "array" "t.data" f.Dsan.f_array;
      checki "guilty chunk" 1 f.Dsan.f_chunk_a;
      checki "witness index" 12 f.Dsan.f_index
  | fs -> Alcotest.failf "expected exactly one DSAN-OWN-01, got %d" (List.length fs)

let test_read_only_write_caught () =
  let data = Array.make 8 0.0 in
  let _, findings =
    Dsan.with_sanitizer ~fuzz:false (fun () ->
        let v = Dsan.wrap ~label:"t.shared" ~mode:Dsan.Read_only data in
        with_jobs 1 (fun () ->
            ignore
              (Parallel.map_chunks ~label:"t.ro" ~chunk:2 ~n:8 (fun lo _ ->
                   ignore (Dsan.get v lo);
                   if lo = 6 then Dsan.set v 0 1.0))))
  in
  match find_rule "DSAN-OWN-01" findings with
  | [ f ] ->
      Alcotest.(check string) "array" "t.shared" f.Dsan.f_array;
      checki "guilty chunk" 3 f.Dsan.f_chunk_a;
      checki "witness index" 0 f.Dsan.f_index
  | fs -> Alcotest.failf "expected exactly one DSAN-OWN-01, got %d" (List.length fs)

(* ---- planted footprint overlaps ---- *)

let test_write_write_overlap_caught () =
  let data = Array.make 32 0 in
  let _, findings =
    Dsan.with_sanitizer ~fuzz:false (fun () ->
        let v = Dsan.wrap ~label:"t.acc" ~mode:Dsan.Footprint data in
        with_jobs 1 (fun () ->
            ignore
              (Parallel.map_chunks ~label:"t.ww" ~chunk:8 ~n:32 (fun lo hi ->
                   for i = lo to hi - 1 do
                     Dsan.set v i 1
                   done;
                   (* chunks 0 and 2 both write slot 17 *)
                   if lo = 0 || lo = 16 then Dsan.set v 17 2))))
  in
  match find_rule "DSAN-WW-01" findings with
  | [ f ] ->
      Alcotest.(check string) "site" "t.ww" f.Dsan.f_site;
      checki "first chunk" 0 f.Dsan.f_chunk_a;
      checki "second chunk" 2 f.Dsan.f_chunk_b;
      checki "witness index" 17 f.Dsan.f_index
  | fs ->
      (* slot 17 also belongs to chunk 2's own range, so chunk 2
         writes it twice — still exactly one cross-chunk pair *)
      Alcotest.failf "expected exactly one DSAN-WW-01, got %d" (List.length fs)

let test_read_write_overlap_caught () =
  let data = Array.make 32 0 in
  let _, findings =
    Dsan.with_sanitizer ~fuzz:false (fun () ->
        let v = Dsan.wrap ~label:"t.facts" ~mode:Dsan.Footprint data in
        with_jobs 1 (fun () ->
            ignore
              (Parallel.map_chunks ~label:"t.rw" ~chunk:8 ~n:32 (fun lo hi ->
                   (* chunk 3 reads slot 2, which chunk 0 writes *)
                   if lo = 24 then ignore (Dsan.get v 2);
                   for i = lo to hi - 1 do
                     Dsan.set v i 1
                   done))))
  in
  match find_rule "DSAN-RW-01" findings with
  | [ f ] ->
      checki "writer chunk" 0 f.Dsan.f_chunk_a;
      checki "reader chunk" 3 f.Dsan.f_chunk_b;
      checki "witness index" 2 f.Dsan.f_index
  | fs -> Alcotest.failf "expected exactly one DSAN-RW-01, got %d" (List.length fs)

(* ---- planted combine/grouping corruption ---- *)

let test_impure_reduce_caught () =
  let hidden = ref 0 in
  let _, findings =
    Dsan.with_sanitizer ~fuzz:false (fun () ->
        with_jobs 1 (fun () ->
            ignore
              (Parallel.parallel_reduce ~label:"t.reduce" ~chunk:4
                 ~map:(fun x ->
                   incr hidden;
                   x + !hidden)
                 ~combine:( + ) ~init:0
                 (Array.init 16 Fun.id))))
  in
  checkb "impure reduce detected" true
    (find_rule "DSAN-REDUCE-01" findings <> [])

let test_pure_reduce_clean () =
  let _, findings =
    Dsan.with_sanitizer ~fuzz:true (fun () ->
        with_jobs 2 (fun () ->
            ignore
              (Parallel.parallel_reduce ~label:"t.reduce.ok" ~chunk:4
                 ~map:(fun x -> (2 * x) + 1)
                 ~combine:( + ) ~init:0
                 (Array.init 100 Fun.id))))
  in
  checki "pure reduce is clean" 0 (List.length findings)

(* ---- schedule fuzzing ---- *)

let test_order_dependent_batch_caught () =
  (* the cell's final value encodes the chunk execution order; any
     permuted schedule that isn't the identity changes it *)
  let run () =
    let cell = ref 0 in
    with_jobs 1 (fun () ->
        ignore
          (Parallel.map_chunks ~label:"t.order" ~chunk:1 ~n:16 (fun lo _ ->
               cell := (!cell * 17) + lo)));
    !cell
  in
  let _, findings = Dsan.schedule_check ~schedules:4 ~equal:( = ) run in
  checkb "order dependence detected" true
    (find_rule "DSAN-SCHED-01" findings <> [])

let test_order_independent_batch_clean () =
  let run () =
    let out = Array.make 16 0 in
    with_jobs 2 (fun () ->
        ignore
          (Parallel.map_chunks ~label:"t.order.ok" ~chunk:1 ~n:16
             (fun lo _ -> out.(lo) <- lo * lo)));
    Array.to_list out
  in
  let _, findings = Dsan.schedule_check ~schedules:4 ~equal:( = ) run in
  checki "clean batch has no findings" 0 (List.length findings)

(* ---- nested parallel calls ---- *)

let test_nested_call_flagged () =
  let _, findings =
    Dsan.with_sanitizer ~fuzz:false (fun () ->
        with_jobs 1 (fun () ->
            ignore
              (Parallel.map_chunks ~label:"t.outer" ~chunk:4 ~n:8 (fun lo _ ->
                   if lo = 0 then
                     ignore
                       (Parallel.map_chunks ~label:"t.inner" ~chunk:2 ~n:4
                          (fun _ _ -> ()))))))
  in
  match find_rule "DSAN-NEST-01" findings with
  | [ f ] -> Alcotest.(check string) "outer site" "t.outer" f.Dsan.f_site
  | fs -> Alcotest.failf "expected exactly one DSAN-NEST-01, got %d" (List.length fs)

(* ---- instrumentation channel (the router's epoch check) ---- *)

let test_record_channel () =
  let _, findings =
    Dsan.with_sanitizer (fun () ->
        Dsan.record ~rule:"DSAN-EPOCH-01" ~site:"route.pairs"
          ~array_label:"search.arena" ~index:42 "stale stamp";
        (* deduped: same (rule, site, array, chunk) reports once *)
        Dsan.record ~rule:"DSAN-EPOCH-01" ~site:"route.pairs"
          ~array_label:"search.arena" ~index:43 "stale stamp again")
  in
  match find_rule "DSAN-EPOCH-01" findings with
  | [ f ] -> checki "first witness kept" 42 f.Dsan.f_index
  | fs -> Alcotest.failf "expected exactly one DSAN-EPOCH-01, got %d" (List.length fs)

let test_off_mode_records_nothing () =
  checkb "off" false (Dsan.on ());
  Dsan.record ~rule:"DSAN-EPOCH-01" "should vanish";
  let data = Array.make 4 0 in
  let v = Dsan.wrap ~label:"t.off" ~mode:Dsan.Read_only data in
  Dsan.set v 0 7;
  checki "tracked set still writes" 7 (Dsan.get v 0);
  checki "no session, no findings" 0 (List.length (Dsan.stop ()))

(* ---- clean parallel code stays clean ---- *)

let test_disjoint_slices_clean () =
  let data = Array.make 64 0 in
  let _, findings =
    Dsan.with_sanitizer ~fuzz:true (fun () ->
        let v = Dsan.wrap ~label:"t.clean" ~mode:Dsan.Slice data in
        with_jobs 4 (fun () ->
            ignore
              (Parallel.map_chunks ~label:"t.disjoint" ~chunk:8 ~n:64
                 (fun lo hi ->
                   for i = lo to hi - 1 do
                     Dsan.set v i (i * 3)
                   done))))
  in
  checki "disjoint writes are clean" 0 (List.length findings);
  Array.iteri (fun i x -> checki (Printf.sprintf "value[%d]" i) (i * 3) x) data

(* the fuzzer permutes execution order but never the combine order *)
let test_fuzz_preserves_results () =
  let reference =
    with_jobs 1 (fun () ->
        Parallel.parallel_init ~label:"t.fuzzres" ~chunk:3 50 (fun i ->
            float_of_int i *. 1.5))
  in
  let fuzzed, findings =
    Dsan.with_sanitizer ~seed:7 ~fuzz:true (fun () ->
        with_jobs 4 (fun () ->
            Parallel.parallel_init ~label:"t.fuzzres" ~chunk:3 50 (fun i ->
                float_of_int i *. 1.5)))
  in
  checki "no findings" 0 (List.length findings);
  Alcotest.(check (array (float 0.0))) "fuzzed schedule, identical result"
    reference fuzzed

(* ---- diagnostics plumbing ---- *)

let test_finding_rendering () =
  let f =
    {
      Dsan.f_rule = "DSAN-WW-01";
      f_site = "drc.tiles";
      f_array = "tile.bins";
      f_chunk_a = 2;
      f_chunk_b = 5;
      f_index = 17;
      f_detail = "both wrote";
    }
  in
  let s = Dsan.finding_to_string f in
  checkb "mentions rule" true (String.length s > 0 && String.sub s 0 10 = "DSAN-WW-01");
  let d = Dsan.to_diag f in
  Alcotest.(check string) "diag rule" "DSAN-WW-01" d.Diag.rule;
  checkb "diag is error" true (d.Diag.severity = Diag.Error);
  checkb "witness carries chunks" true
    (List.exists (fun w -> w = "chunks 2 and 5") d.Diag.witness);
  checkb "nest is warning" true
    ((Dsan.to_diag { f with Dsan.f_rule = "DSAN-NEST-01" }).Diag.severity
    = Diag.Warning)

let test_rules_registered () =
  List.iter
    (fun rule ->
      checkb (rule ^ " registered") true (Rules.find rule <> None))
    [
      "DSAN-DIVERGE-01"; "DSAN-EPOCH-01"; "DSAN-NEST-01"; "DSAN-OWN-01";
      "DSAN-REDUCE-01"; "DSAN-RW-01"; "DSAN-SCHED-01"; "DSAN-WW-01";
    ]

(* ---- divergence localization plumbing ---- *)

let test_first_divergence () =
  let slot name digest =
    { Sanitize.sl_stage = Flow.Synth; sl_name = name; sl_digest = digest }
  in
  let base = [ slot "a" "1"; slot "b" "2"; slot "c" "3" ] in
  checkb "identical fingerprints" true
    (Sanitize.first_divergence base base = None);
  (match Sanitize.first_divergence base [ slot "a" "1"; slot "b" "X"; slot "c" "3" ] with
  | Some (1, Some s) -> Alcotest.(check string) "divergent slot" "b" s.Sanitize.sl_name
  | _ -> Alcotest.fail "expected divergence at slot 1");
  match Sanitize.first_divergence base [ slot "a" "1" ] with
  | Some (1, None) -> ()
  | _ -> Alcotest.fail "expected prefix divergence at 1"

(* ---- end-to-end: the bundled design is clean under the sanitizer ---- *)

let test_sanitize_adder8_clean () =
  match
    Sanitize.run ~schedules:1 ~jobs:2 (Circuits.benchmark "adder8")
  with
  | Error d -> Alcotest.failf "sanitize failed: %s" (Diag.to_string d)
  | Ok rep ->
      checkb "fingerprinted something" true (rep.Sanitize.slots > 0);
      Alcotest.(check (list string)) "no findings on adder8" []
        (List.map Dsan.finding_to_string rep.Sanitize.findings)

let () =
  Alcotest.run "dsan"
    [
      ( "planted races",
        [
          Alcotest.test_case "out-of-slice write" `Quick
            test_out_of_slice_write_caught;
          Alcotest.test_case "read-only write" `Quick test_read_only_write_caught;
          Alcotest.test_case "write-write overlap" `Quick
            test_write_write_overlap_caught;
          Alcotest.test_case "read-write overlap" `Quick
            test_read_write_overlap_caught;
          Alcotest.test_case "impure reduce" `Quick test_impure_reduce_caught;
          Alcotest.test_case "order-dependent batch" `Quick
            test_order_dependent_batch_caught;
          Alcotest.test_case "nested parallel call" `Quick test_nested_call_flagged;
        ] );
      ( "clean code stays clean",
        [
          Alcotest.test_case "pure reduce" `Quick test_pure_reduce_clean;
          Alcotest.test_case "order-independent batch" `Quick
            test_order_independent_batch_clean;
          Alcotest.test_case "disjoint slices" `Quick test_disjoint_slices_clean;
          Alcotest.test_case "fuzz preserves results" `Quick
            test_fuzz_preserves_results;
          Alcotest.test_case "off mode records nothing" `Quick
            test_off_mode_records_nothing;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "record channel + dedup" `Quick test_record_channel;
          Alcotest.test_case "finding rendering" `Quick test_finding_rendering;
          Alcotest.test_case "rules registered" `Quick test_rules_registered;
          Alcotest.test_case "first divergence search" `Quick
            test_first_divergence;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "sanitize adder8 clean" `Slow
            test_sanitize_adder8_clean;
        ] );
    ]
