(* Integration tests: the full RTL-to-GDS flow. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_flow_end_to_end () =
  let aoi = Circuits.kogge_stone_adder 4 in
  let path = Filename.temp_file "superflow" ".gds" in
  let r = Flow.run ~gds_path:path aoi in
  (* functional equivalence survives the whole flow *)
  checkb "equivalent" true (Sim.equivalent aoi r.Flow.aqfp_netlist);
  checkb "balanced" true (Netlist.is_balanced r.Flow.aqfp_netlist);
  (* placement legal, routing valid, DRC clean *)
  checkb "legal placement" true (Problem.check_legal r.Flow.problem = Ok ());
  (match Router.check_routes r.Flow.problem r.Flow.routing with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "drc clean" []
    (List.map Diag.to_string r.Flow.violations);
  (* the GDS on disk parses and contains the design *)
  (match Gds.read_file path with
  | Ok lib ->
      let top = List.find (fun s -> s.Gds.sname = "TOP") lib.Gds.structures in
      let srefs =
        List.length
          (List.filter (function Gds.Sref _ -> true | _ -> false) top.Gds.elements)
      in
      checki "gds cell instances" (Array.length r.Flow.problem.Problem.cells) srefs
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_flow_from_verilog () =
  let src =
    {|
module majority_vote(a, b, c, y);
  input a, b, c;
  output y;
  assign y = (a & b) | (a & c) | (b & c);
endmodule
|}
  in
  match Flow.run_verilog src with
  | Error e -> Alcotest.fail e
  | Ok r ->
      (* the synthesized design computes majority *)
      let nl = r.Flow.aqfp_netlist in
      for v = 0 to 7 do
        let ins = Array.init 3 (fun k -> (v lsr k) land 1 = 1) in
        let expect =
          (ins.(0) && ins.(1)) || (ins.(0) && ins.(2)) || (ins.(1) && ins.(2))
        in
        checkb "majority" expect (Sim.eval nl ins).(0)
      done;
      (* a majority function should map to very few majority gates *)
      let majs = Netlist.count_kind nl (fun k -> k = Netlist.Maj) in
      checkb "mapped to maj" true (majs >= 1 && majs <= 3)

let test_flow_from_verilog_error () =
  match Flow.run_verilog "module broken(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted broken verilog"

let test_flow_bench_file () =
  let path = Filename.temp_file "superflow" ".bench" in
  let oc = open_out path in
  output_string oc "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
  close_out oc;
  (match Flow.run_bench_file path with
  | Error e -> Alcotest.fail e
  | Ok r ->
      List.iter
        (fun (a, b) ->
          checkb "nand" (not (a && b)) (Sim.eval r.Flow.aqfp_netlist [| a; b |]).(0))
        [ (false, false); (true, false); (true, true) ]);
  Sys.remove path

let test_flow_all_placers () =
  let aoi = Circuits.kogge_stone_adder 2 in
  List.iter
    (fun alg ->
      let r = Flow.run ~algorithm:alg aoi in
      checkb
        (Placer.algorithm_name alg ^ " equivalent")
        true
        (Sim.equivalent aoi r.Flow.aqfp_netlist);
      Alcotest.(check (list string))
        (Placer.algorithm_name alg ^ " drc")
        []
        (List.map Diag.to_string r.Flow.violations))
    [ Placer.Gordian; Placer.Taas; Placer.Superflow ]

let test_flow_deterministic () =
  let aoi = Circuits.kogge_stone_adder 2 in
  let a = Flow.run ~seed:3 aoi and b = Flow.run ~seed:3 aoi in
  Alcotest.(check (float 1e-9)) "same hpwl" a.Flow.placement.Placer.hpwl
    b.Flow.placement.Placer.hpwl;
  Alcotest.(check (float 1e-9)) "same routed wl" a.Flow.routing.Router.wirelength
    b.Flow.routing.Router.wirelength

let test_flow_medium_benchmark () =
  let aoi = Circuits.benchmark "apc32" in
  let r = Flow.run aoi in
  checkb "equivalent" true (Sim.equivalent aoi r.Flow.aqfp_netlist);
  checkb "jj after routing >= jj after synthesis" true
    (Problem.jj_count r.Flow.problem >= r.Flow.synth_report.Synth_flow.jjs);
  Alcotest.(check (list string)) "drc clean" []
    (List.map Diag.to_string r.Flow.violations)

let test_report_tables_shapes () =
  (* Table II measurement has the paper's structural invariants *)
  let row = Report.measure_table2 "adder8" in
  checkb "jjs > nets" true (row.Report.jjs > row.Report.nets);
  checkb "delay positive" true (row.Report.delay > 0);
  (* Table III: three placers, all legal-positive *)
  let rows = Report.measure_table3 "adder8" in
  checki "three placers" 3 (List.length rows);
  List.iter (fun r -> checkb "hpwl > 0" true (r.Report.hpwl > 0.0)) rows;
  (* paper reference data is complete *)
  checki "paper t2" 9 (List.length Report.paper_table2);
  checki "paper t3" 9 (List.length Report.paper_table3);
  checki "paper t4" 9 (List.length Report.paper_table4)

let test_fig4_ablation_shape () =
  let rows = Report.measure_fig4 "adder8" in
  checki "two arms" 2 (List.length rows);
  match rows with
  | [ matched; mixed ] ->
      checkb "arms labelled" true ((not matched.Report.mixed) && mixed.Report.mixed);
      checkb "mixed not worse (hpwl)" true
        (mixed.Report.f_hpwl <= matched.Report.f_hpwl *. 1.05)
  | _ -> Alcotest.fail "expected two rows"

let test_chip_report () =
  let r = Flow.run (Circuits.kogge_stone_adder 2) in
  let rep = Chip_report.of_flow r in
  checki "cells" (Array.length r.Flow.problem.Problem.cells) rep.Chip_report.design_cells;
  checkb "utilization sane" true
    (rep.Chip_report.utilization > 0.0 && rep.Chip_report.utilization < 1.0);
  (* class rows add up to the whole design *)
  let total = List.fold_left (fun acc c -> acc + c.Chip_report.count) 0 rep.Chip_report.by_class in
  checki "class counts add up" rep.Chip_report.design_cells total;
  let jj_total = List.fold_left (fun acc c -> acc + c.Chip_report.jj) 0 rep.Chip_report.by_class in
  checki "jj adds up" (Problem.jj_count r.Flow.problem) jj_total;
  let text = Chip_report.render rep in
  checkb "renders" true (String.length text > 200)

let test_html_report () =
  let r = Flow.run (Circuits.kogge_stone_adder 2) in
  let rep = Chip_report.of_flow r in
  let html = Chip_report.to_html ~svg:(Svg.render r.Flow.layout) rep in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
    loop 0
  in
  checkb "doctype" true (contains html "<!DOCTYPE html>");
  checkb "closes" true (contains html "</html>");
  checkb "has svg" true (contains html "<svg");
  checkb "has table" true (contains html "<table");
  checkb "escapes safely" true (not (contains html "<script"))

let () =
  Alcotest.run "superflow"
    [
      ( "flow",
        [
          Alcotest.test_case "end to end" `Quick test_flow_end_to_end;
          Alcotest.test_case "from verilog" `Quick test_flow_from_verilog;
          Alcotest.test_case "verilog error" `Quick test_flow_from_verilog_error;
          Alcotest.test_case "bench file" `Quick test_flow_bench_file;
          Alcotest.test_case "all placers" `Slow test_flow_all_placers;
          Alcotest.test_case "deterministic" `Slow test_flow_deterministic;
          Alcotest.test_case "medium benchmark" `Slow test_flow_medium_benchmark;
        ] );
      ( "report",
        [
          Alcotest.test_case "tables" `Slow test_report_tables_shapes;
          Alcotest.test_case "fig4" `Slow test_fig4_ablation_shape;
          Alcotest.test_case "chip report" `Quick test_chip_report;
          Alcotest.test_case "html report" `Quick test_html_report;
        ] );
    ]
