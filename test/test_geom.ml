(* Tests for sf_geom: exact integer geometry, the plane sweep, the
   interval-stabbing tree and the tile partition. The search
   structures are held to exact agreement with naive O(n²)/O(n)
   scans on randomized inputs. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- Igeom scalars and rectangles ---------- *)

let test_snap_roundtrip () =
  List.iter
    (fun v ->
      let n = Igeom.of_um v in
      checkb
        (Printf.sprintf "snap %g" v)
        true
        (Float.abs (Igeom.to_um n -. v) < 0.5e-3))
    [ 0.0; 10.0; -7.25; 123.456; 0.001; -0.001; 99990.0 ]

let test_um_str () =
  Alcotest.(check string) "renders millinm" "1.234" (Igeom.um_str 1234);
  Alcotest.(check string) "negative" "-0.500" (Igeom.um_str (-500))

let r lx ly hx hy = { Igeom.lx; ly; hx; hy }

let test_rect_predicates () =
  let a = r 0 0 10 10 in
  checkb "overlaps self" true (Igeom.overlaps a a);
  checkb "touch is not overlap" false (Igeom.overlaps a (r 10 0 20 10));
  checkb "touch is touch" true (Igeom.touches a (r 10 0 20 10));
  checkb "corner touch" true (Igeom.touches a (r 10 10 20 20));
  checkb "disjoint" false (Igeom.touches a (r 11 0 20 10));
  checki "inter area" 25 (Igeom.inter_area a (r 5 5 20 20));
  checki "no inter area" 0 (Igeom.inter_area a (r 10 0 20 10));
  checki "gap x" 5 (Igeom.gap_x a (r 15 0 20 10));
  checki "gap on overlap" 0 (Igeom.gap_x a (r 5 0 20 10));
  checki "sep2 diagonal" 50 (Igeom.sep2 a (r 15 15 20 20));
  checkb "contains closed" true (Igeom.contains a (r 0 0 10 10));
  checkb "contains proper" false (Igeom.contains (r 0 0 9 10) a)

let test_covered () =
  let target = r 0 0 10 10 in
  checkb "single cover" true (Igeom.covered target [ r (-1) (-1) 11 11 ]);
  checkb "exact cover" true (Igeom.covered target [ target ]);
  checkb "two halves" true (Igeom.covered target [ r 0 0 5 10; r 5 0 10 10 ]);
  checkb "two halves with overlap" true
    (Igeom.covered target [ r 0 0 7 10; r 3 0 10 10 ]);
  checkb "gap" false (Igeom.covered target [ r 0 0 4 10; r 6 0 10 10 ]);
  checkb "partial height" false (Igeom.covered target [ r 0 0 10 9 ]);
  checkb "quilt" true
    (Igeom.covered target
       [ r 0 0 6 6; r 6 0 10 6; r 0 6 6 10; r 6 6 10 10 ]);
  checkb "quilt with hole" false
    (Igeom.covered target [ r 0 0 6 6; r 6 0 10 6; r 0 6 6 10 ]);
  checkb "empty cover" false (Igeom.covered target [])

let prop_covered_matches_pointwise =
  (* covered <=> every half-unit sample point of the target lies in
     some rect. Rect boundaries are integers, so any uncovered
     continuous region has extent >= 1 per axis and the doubled
     (half-unit) lattice cannot miss it — unlike the unit lattice,
     which skips the open gap between closed [a, b] and [b+1, c]. *)
  QCheck.Test.make ~name:"covered matches pointwise check" ~count:200
    QCheck.(
      pair
        (pair (int_range 0 6) (int_range 0 6))
        (small_list (pair (pair (int_range (-2) 8) (int_range (-2) 8))
                       (pair (int_range 1 6) (int_range 1 6)))))
    (fun ((tw, th), rects) ->
      let target = r 0 0 (2 * tw) (2 * th) in
      let covers =
        List.map
          (fun ((x, y), (w, h)) -> r (2 * x) (2 * y) (2 * (x + w)) (2 * (y + h)))
          rects
      in
      let inside p_x p_y rc =
        p_x >= rc.Igeom.lx && p_x <= rc.Igeom.hx && p_y >= rc.Igeom.ly
        && p_y <= rc.Igeom.hy
      in
      let pointwise = ref true in
      for x = 0 to 2 * tw do
        for y = 0 to 2 * th do
          if not (List.exists (inside x y) covers) then pointwise := false
        done
      done;
      Igeom.covered target covers = !pointwise)

(* ---------- plane sweep vs. the double loop ---------- *)

let random_rects seed n =
  Random.init seed;
  Array.init n (fun _ ->
      let x = Random.int 200 and y = Random.int 200 in
      r x y (x + 1 + Random.int 30) (y + 1 + Random.int 30))

let pairs_naive ~dist rects =
  let acc = ref [] in
  let n = Array.length rects in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        Igeom.gap_x rects.(i) rects.(j) < dist
        && Igeom.gap_y rects.(i) rects.(j) < dist
      then acc := (i, j) :: !acc
    done
  done;
  List.sort compare !acc

let test_sweep_matches_naive () =
  List.iter
    (fun (seed, n, dist) ->
      let rects = random_rects seed n in
      let got = ref [] in
      Sweep.close_pairs ~dist rects (fun i j -> got := (i, j) :: !got);
      let got = List.sort compare !got in
      let want = pairs_naive ~dist rects in
      checki
        (Printf.sprintf "seed %d n %d dist %d: pair count" seed n dist)
        (List.length want) (List.length got);
      checkb "same pairs" true (got = want))
    [ (1, 50, 8); (2, 120, 8); (3, 80, 1); (4, 200, 25); (5, 10, 100); (6, 0, 8) ]

(* ---------- stabbing tree vs. the linear scan ---------- *)

let test_stab_matches_naive () =
  List.iter
    (fun (seed, n) ->
      Random.init seed;
      let ivs =
        Array.init n (fun _ ->
            let lo = Random.int 300 in
            (lo, lo + Random.int 40))
      in
      let t = Stab.build ivs in
      for x = -5 to 305 do
        let got = ref [] in
        Stab.stab t x (fun i -> got := i :: !got);
        let want = ref [] in
        Array.iteri
          (fun i (lo, hi) -> if lo <= x && x <= hi then want := i :: !want)
          ivs;
        checkb
          (Printf.sprintf "seed %d stab %d" seed x)
          true
          (List.sort compare !got = List.sort compare !want)
      done;
      for q = 0 to 50 do
        let lo = Random.int 300 in
        let hi = lo + Random.int 60 in
        let got = ref [] in
        Stab.query t lo hi (fun i -> got := i :: !got);
        let want = ref [] in
        Array.iteri
          (fun i (l, h) -> if l <= hi && h >= lo then want := i :: !want)
          ivs;
        checkb
          (Printf.sprintf "seed %d query %d [%d,%d]" seed q lo hi)
          true
          (List.sort compare !got = List.sort compare !want)
      done)
    [ (11, 40); (12, 150); (13, 1); (14, 0) ]

(* ---------- tile partition ---------- *)

let test_tile_partition () =
  let bbox = r (-37) 12 410 265 in
  let t = Tile.make ~bbox ~size:100 ~halo:10 in
  checkb "covers bbox" true (Tile.count t >= 1);
  (* every point of the bbox is owned by exactly the tile whose proper
     rect contains it *)
  for x = bbox.Igeom.lx to bbox.Igeom.hx do
    let y = 100 in
    let i = Tile.owner t x y in
    let p = Tile.proper t i in
    checkb
      (Printf.sprintf "owner of (%d,%d)" x y)
      true
      (x >= p.Igeom.lx && x < p.Igeom.hx && y >= p.Igeom.ly && y < p.Igeom.hy)
  done;
  (* binning is a superset of ownership: a rect is always binned into
     the tile owning any of its points *)
  Random.init 99;
  for _ = 1 to 200 do
    let x = -37 + Random.int 440 and y = 12 + Random.int 250 in
    let rc = r x y (x + 1 + Random.int 50) (y + 1 + Random.int 50) in
    let bins = ref [] in
    Tile.iter_touching t rc (fun i -> bins := i :: !bins);
    let owner = Tile.owner t x y in
    checkb "owner tile binned" true (List.mem owner !bins);
    (* halo soundness: any point within halo of the rect is owned by a
       binned tile *)
    let px = max rc.Igeom.lx (rc.Igeom.lx - 10) and py = rc.Igeom.ly - 10 in
    checkb "halo point's owner binned" true (List.mem (Tile.owner t px py) !bins)
  done

let test_tile_owner_clamps () =
  let t = Tile.make ~bbox:(r 0 0 100 100) ~size:50 ~halo:5 in
  checki "far outside clamps" (Tile.owner t 0 0) (Tile.owner t (-1000) (-1000));
  checkb "in range" true (Tile.owner t 99 99 < Tile.count t)

let () =
  Alcotest.run "sf_geom"
    [
      ( "igeom",
        [
          Alcotest.test_case "snap roundtrip" `Quick test_snap_roundtrip;
          Alcotest.test_case "um_str" `Quick test_um_str;
          Alcotest.test_case "rect predicates" `Quick test_rect_predicates;
          Alcotest.test_case "covered" `Quick test_covered;
          QCheck_alcotest.to_alcotest prop_covered_matches_pointwise;
        ] );
      ( "sweep",
        [ Alcotest.test_case "matches naive" `Quick test_sweep_matches_naive ] );
      ( "stab",
        [ Alcotest.test_case "matches naive" `Quick test_stab_matches_naive ] );
      ( "tile",
        [
          Alcotest.test_case "partition" `Quick test_tile_partition;
          Alcotest.test_case "owner clamps" `Quick test_tile_owner_clamps;
        ] );
    ]
