(* Tests for GDSII writing/reading, layout assembly and the DRC
   engine. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ---------- GDS real encoding ---------- *)

let test_gds_real_roundtrip () =
  List.iter
    (fun v ->
      let enc = Gds.gds_real_of_float v in
      let dec = Gds.float_of_gds_real enc in
      checkb
        (Printf.sprintf "real %g -> %g" v dec)
        true
        (Float.abs (dec -. v) <= Float.abs v *. 1e-12))
    [ 0.0; 1.0; -1.0; 0.001; 1e-9; 123456.789; -0.25; 16.0; 1.0 /. 1024.0 ]

let test_gds_real_known_value () =
  (* 1.0 = 0x4110000000000000 in GDSII excess-64 representation *)
  Alcotest.(check int64) "encode 1.0" 0x4110000000000000L (Gds.gds_real_of_float 1.0)

let prop_gds_real_roundtrip =
  QCheck.Test.make ~name:"gds 8-byte reals roundtrip" ~count:300
    QCheck.(float_range (-1e12) 1e12)
    (fun v ->
      let dec = Gds.float_of_gds_real (Gds.gds_real_of_float v) in
      Float.abs (dec -. v) <= Float.abs v *. 1e-12 +. 1e-300)

(* ---------- GDS stream roundtrip ---------- *)

let sample_lib () =
  {
    Gds.libname = "TESTLIB";
    structures =
      [
        {
          Gds.sname = "cellA";
          elements =
            [
              Gds.Boundary { layer = 1; points = [ (0.0, 0.0); (40.0, 0.0); (40.0, 30.0); (0.0, 30.0) ] };
              Gds.Path { layer = 10; width = 2.0; points = [ (0.0, 5.0); (100.0, 5.0) ] };
            ];
        };
        {
          Gds.sname = "TOP";
          elements =
            [
              Gds.Sref { sname = "cellA"; x = 120.0; y = 40.0 };
              Gds.Text { layer = 20; x = 1.0; y = 2.0; text = "hello" };
            ];
        };
      ];
  }

let test_gds_stream_roundtrip () =
  let lib = sample_lib () in
  match Gds.of_bytes (Gds.to_bytes lib) with
  | Error e -> Alcotest.fail e
  | Ok lib2 ->
      Alcotest.(check string) "libname" lib.Gds.libname lib2.Gds.libname;
      checki "structures" 2 (List.length lib2.Gds.structures);
      let a = List.hd lib2.Gds.structures in
      Alcotest.(check string) "sname" "cellA" a.Gds.sname;
      (match a.Gds.elements with
      | [ Gds.Boundary { layer; points }; Gds.Path { layer = pl; width; points = pp } ] ->
          checki "layer" 1 layer;
          checki "points" 4 (List.length points);
          checki "path layer" 10 pl;
          checkf "width" 2.0 width;
          checki "path points" 2 (List.length pp)
      | _ -> Alcotest.fail "bad elements");
      let top = List.nth lib2.Gds.structures 1 in
      (match top.Gds.elements with
      | [ Gds.Sref { sname; x; y }; Gds.Text { text; _ } ] ->
          Alcotest.(check string) "sref" "cellA" sname;
          checkf "x" 120.0 x;
          checkf "y" 40.0 y;
          Alcotest.(check string) "text" "hello" text
      | _ -> Alcotest.fail "bad top elements")

let test_gds_file_roundtrip () =
  let lib = sample_lib () in
  let path = Filename.temp_file "superflow" ".gds" in
  Gds.write_file path lib;
  (match Gds.read_file path with
  | Error e -> Alcotest.fail e
  | Ok lib2 -> checki "structures" 2 (List.length lib2.Gds.structures));
  Sys.remove path

let test_gds_rejects_garbage () =
  (match Gds.of_bytes (Bytes.of_string "not a gds file") with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Gds.of_bytes (Bytes.of_string "") with
  | Ok _ -> Alcotest.fail "accepted empty"
  | Error _ -> ()

(* ---------- Layout assembly ---------- *)

let routed_design () =
  let aoi = Circuits.kogge_stone_adder 2 in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  let r = Router.route_all p in
  (p, r)

let test_layout_build () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  checki "cells" (Array.length p.Problem.cells) (Array.length layout.Layout.cells);
  let s = Layout.stats layout in
  checkb "wires" true (s.Layout.n_wires > 0);
  checkb "jj matches problem" true (s.Layout.total_jj = Problem.jj_count p);
  checkf "wirelength matches routing" r.Router.wirelength s.Layout.wirelength;
  checki "vias match routing" r.Router.total_vias s.Layout.n_vias

let test_layout_gds_has_all_cells () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let lib = Layout.to_gds layout in
  (* TOP exists and every SREF names a defined structure *)
  let names = List.map (fun s -> s.Gds.sname) lib.Gds.structures in
  checkb "TOP present" true (List.mem "TOP" names);
  let top = List.find (fun s -> s.Gds.sname = "TOP") lib.Gds.structures in
  let srefs =
    List.filter_map
      (function Gds.Sref { sname; _ } -> Some sname | _ -> None)
      top.Gds.elements
  in
  checki "one sref per cell" (Array.length layout.Layout.cells) (List.length srefs);
  List.iter (fun s -> checkb ("struct " ^ s) true (List.mem s names)) srefs;
  (* roundtrip through the binary format *)
  match Gds.of_bytes (Gds.to_bytes lib) with
  | Ok lib2 -> checki "roundtrip structures" (List.length lib.Gds.structures) (List.length lib2.Gds.structures)
  | Error e -> Alcotest.fail e

let test_layout_bias_network () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  (* two AC lines per row plus serpentine hops plus one DC trunk *)
  let n_rows = p.Problem.n_rows in
  let expected = (2 * n_rows) + (2 * (n_rows - 1)) + 1 in
  checki "bias segment count" expected (Array.length layout.Layout.bias);
  (* serpentines span the whole die width *)
  let s = Layout.stats layout in
  checkb "bias length substantial" true
    (s.Layout.bias_wirelength > float_of_int n_rows *. Problem.row_width p);
  (* and they are emitted into the GDS *)
  let lib = Layout.to_gds layout in
  let top = List.find (fun st -> st.Gds.sname = "TOP") lib.Gds.structures in
  let clock_paths =
    List.length
      (List.filter
         (function Gds.Path { layer; _ } -> layer >= 21 && layer <= 23 | _ -> false)
         top.Gds.elements)
  in
  checki "clock paths in gds" expected clock_paths

(* ---------- DRC ---------- *)

let diag_strings ds = List.map Diag.to_string ds

let test_drc_clean_on_routed_design () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  Alcotest.(check (list string))
    "clean" []
    (diag_strings (Drc.check layout).Drc.diags);
  Alcotest.(check (list string))
    "brute clean" []
    (diag_strings (Drc.check_brute layout))

let perturb_layout layout f =
  let cells = Array.map (fun c -> c) layout.Layout.cells in
  let wires = Array.map (fun w -> w) layout.Layout.wires in
  let vias = Array.map (fun v -> v) layout.Layout.vias in
  f cells wires vias;
  { layout with Layout.cells; wires; vias }

(* Synthetic layouts: one hand-built geometry per rule id. [fires]
   doubles as an engine/brute-force agreement check on each of them. *)

let m1 = Layout.layer_m1
let m2 = Layout.layer_m2

let wire net layer x1 y1 x2 y2 =
  { Layout.net; layer; a = Geom.pt x1 y1; b = Geom.pt x2 y2 }

let via net x y = { Layout.net; at = Geom.pt x y }

let lay ?(cells = [||]) ?(wires = [||]) ?(vias = [||]) () =
  {
    Layout.tech = Tech.default;
    cells;
    wires;
    vias;
    bias = [||];
    die = Geom.rect 0.0 0.0 400.0 400.0;
  }

let deck0 () = Drc.deck_of_tech Tech.default

let fires ?deck rule layout =
  let tiled = (Drc.check ?deck layout).Drc.diags in
  let brute = Drc.check_brute ?deck layout in
  checkb (rule ^ " fires") true
    (List.exists (fun (d : Diag.t) -> d.Diag.rule = rule) tiled);
  Alcotest.(check (list string))
    (rule ^ ": tiled = brute") (diag_strings brute) (diag_strings tiled)

let test_rule_wire_spacing () =
  fires "DRC-WIRE-SPACING"
    (lay ~wires:[| wire 0 m1 0.0 0.0 50.0 0.0; wire 1 m1 0.0 6.0 50.0 6.0 |] ())

let test_rule_wire_overlap () =
  fires "DRC-WIRE-OVERLAP"
    (lay ~wires:[| wire 0 m1 0.0 0.0 50.0 0.0; wire 1 m1 30.0 0.0 80.0 0.0 |] ())

let test_rule_notch () =
  (* same net re-approaching itself without touching *)
  fires "DRC-NOTCH-01"
    (lay ~wires:[| wire 0 m1 0.0 0.0 50.0 0.0; wire 0 m1 0.0 6.0 50.0 6.0 |] ())

let test_rule_eol () =
  (* foreign metal 4 µm ahead of a line end (edge gap < eol = 8 µm) *)
  fires "DRC-EOL-01"
    (lay ~wires:[| wire 0 m1 0.0 0.0 20.0 0.0; wire 1 m1 25.0 (-10.0) 25.0 10.0 |] ())

let test_rule_zigzag () =
  fires "DRC-ZIGZAG-SPACING"
    (lay
       ~wires:[| wire 0 m1 0.0 0.0 6.0 0.0 |]
       ~vias:[| via 0 0.0 0.0; via 0 6.0 0.0 |]
       ())

let test_rule_via_alignment () =
  fires "DRC-VIA-ALIGNMENT" (lay ~vias:[| via 0 100.0 100.0 |] ())

let test_rule_via_enclose () =
  (* both layers land (alignment passes) but a 2 µm enclosure demand
     exceeds the endcap's 1 µm reach around the cut *)
  fires
    ~deck:{ (deck0 ()) with Drc.via_enclosure = 2000 }
    "DRC-VIA-ENCLOSE-01"
    (lay
       ~wires:[| wire 0 m1 0.0 0.0 20.0 0.0; wire 0 m2 0.0 0.0 0.0 (-20.0) |]
       ~vias:[| via 0 0.0 0.0 |]
       ())

let test_rule_width () =
  fires
    ~deck:{ (deck0 ()) with Drc.min_width = 3000 }
    "DRC-WIDTH-01"
    (lay ~wires:[| wire 0 m1 0.0 0.0 20.0 0.0 |] ())

let test_rule_area () =
  fires
    ~deck:{ (deck0 ()) with Drc.min_area = 100_000_000 }
    "DRC-AREA-01"
    (lay ~wires:[| wire 0 m1 0.0 0.0 10.0 0.0 |] ())

let test_rule_off_grid () =
  fires "DRC-OFF-GRID" (lay ~wires:[| wire 0 m1 3.0 0.0 23.0 0.0 |] ())

let test_rule_density () =
  fires
    ~deck:{ (deck0 ()) with Drc.max_density = 0.0 }
    "DRC-DENSITY"
    (lay ~wires:[| wire 0 m1 0.0 0.0 50.0 0.0 |] ())

let test_rule_cell_overlap () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let bad =
    perturb_layout layout (fun cells _ _ ->
        (* find two cells in the same row and slam them together *)
        let c0 = cells.(0) in
        let same_row =
          Array.to_list cells
          |> List.filter (fun c ->
                 c.Layout.origin.Geom.y = c0.Layout.origin.Geom.y && c != c0)
        in
        match same_row with
        | c1 :: _ ->
            let idx = ref 0 in
            Array.iteri (fun i c -> if c == c1 then idx := i) cells;
            cells.(!idx) <-
              {
                c1 with
                Layout.origin =
                  Geom.pt (c0.Layout.origin.Geom.x +. 10.0)
                    c0.Layout.origin.Geom.y;
              }
        | [] -> ())
  in
  fires "DRC-CELL-OVERLAP" bad

let test_rule_cell_spacing () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let bad =
    perturb_layout layout (fun cells _ _ ->
        let c0 = cells.(0) in
        let same_row =
          Array.to_list cells
          |> List.filter (fun c ->
                 c.Layout.origin.Geom.y = c0.Layout.origin.Geom.y && c != c0)
        in
        match same_row with
        | c1 :: _ ->
            let idx = ref 0 in
            Array.iteri (fun i c -> if c == c1 then idx := i) cells;
            (* 4 µm gap: under s_min but no overlap *)
            cells.(!idx) <-
              {
                c1 with
                Layout.origin =
                  Geom.pt
                    (c0.Layout.origin.Geom.x +. c0.Layout.lib.Cell.width +. 4.0)
                    c0.Layout.origin.Geom.y;
              }
        | [] -> ())
  in
  fires "DRC-CELL-SPACING" bad

let test_rule_cell_off_grid () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let bad =
    perturb_layout layout (fun cells _ _ ->
        let c = cells.(0) in
        cells.(0) <-
          {
            c with
            Layout.origin =
              Geom.pt (c.Layout.origin.Geom.x +. 3.0) c.Layout.origin.Geom.y;
          })
  in
  fires "DRC-OFF-GRID" bad

(* ---- randomized engine vs. brute-force equality ---- *)

let random_layout seed =
  Random.init (1000 + seed);
  let coord () = float_of_int (10 * Random.int 40) in
  let n_wires = 20 + Random.int 40 in
  let wires =
    Array.init n_wires (fun _ ->
        let net = Random.int 6 in
        let x = coord () and y = coord () in
        let len = float_of_int (10 * (1 + Random.int 15)) in
        let horiz = Random.bool () in
        let x2 = if horiz then x +. len else x
        and y2 = if horiz then y else y +. len in
        let layer =
          (* occasionally the "wrong" layer for the orientation *)
          if Random.int 10 = 0 then if horiz then m2 else m1
          else if horiz then m1
          else m2
        in
        let jitter v = if Random.int 12 = 0 then v +. 3.0 else v in
        wire net layer (jitter x) (jitter y) x2 y2)
  in
  let n_vias = Random.int 8 in
  let vias =
    Array.init n_vias (fun _ ->
        if Random.bool () then
          let w = wires.(Random.int n_wires) in
          via w.Layout.net w.Layout.a.Geom.x w.Layout.a.Geom.y
        else via (Random.int 6) (coord ()) (coord ()))
  in
  lay ~wires ~vias ()

let test_drc_matches_brute_on_random_layouts () =
  let nonempty = ref 0 in
  for seed = 1 to 30 do
    let layout = random_layout seed in
    let tiled = (Drc.check layout).Drc.diags in
    let brute = Drc.check_brute layout in
    if brute <> [] then incr nonempty;
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: tiled = brute" seed)
      (diag_strings brute) (diag_strings tiled)
  done;
  (* the layouts are dense enough that most runs find something *)
  checkb "violations exercised" true (!nonempty > 20)

let test_drc_tile_straddling () =
  (* violating pairs deliberately spanning the 120 µm tile boundaries *)
  let wires =
    [|
      wire 0 m1 0.0 118.0 400.0 118.0;
      wire 1 m1 0.0 124.0 400.0 124.0;
      wire 2 m2 118.0 0.0 118.0 400.0;
      wire 3 m2 124.0 0.0 124.0 400.0;
    |]
  in
  let layout = lay ~wires () in
  let tiled = Drc.check layout in
  let brute = Drc.check_brute layout in
  checkb "spans several tiles" true (tiled.Drc.stats.Drc.tiles_total > 1);
  checkb "found the straddling pairs" true (brute <> []);
  Alcotest.(check (list string))
    "tiled = brute" (diag_strings brute)
    (diag_strings tiled.Drc.diags)

let test_drc_jobs_deterministic () =
  let layout = random_layout 7 in
  Parallel.set_jobs 1;
  let a = (Drc.check layout).Drc.diags in
  Parallel.set_jobs 4;
  let b = (Drc.check layout).Drc.diags in
  Parallel.auto_jobs ();
  Alcotest.(check (list string)) "jobs 1 = jobs 4" (diag_strings a) (diag_strings b)

(* ---- tile-incremental rechecks through an in-memory cache ---- *)

let test_drc_eco_incremental () =
  let p, r = routed_design () in
  let layout_a = Layout.build p r in
  (* a small tile so the design spans many of them *)
  let deck = { (deck0 ()) with Drc.tile = 40_000 } in
  let tbl : (string, Diag.t list) Hashtbl.t = Hashtbl.create 64 in
  let cache = { Drc.find = Hashtbl.find_opt tbl; store = Hashtbl.replace tbl } in
  let ra = Drc.check ~deck ~cache layout_a in
  checki "cold run checks every tile" ra.Drc.stats.Drc.tiles_total
    ra.Drc.stats.Drc.tiles_checked;
  (* warm, unchanged: nothing recomputes, output identical *)
  let ra2 = Drc.check ~deck ~cache layout_a in
  checki "warm run recomputes nothing" 0 ra2.Drc.stats.Drc.tiles_checked;
  checkb "warm density cached" true ra2.Drc.stats.Drc.density_cached;
  Alcotest.(check (list string))
    "warm = cold" (diag_strings ra.Drc.diags) (diag_strings ra2.Drc.diags);
  (* ECO: nudge one wire off grid — only nearby tiles go dirty *)
  let layout_b =
    perturb_layout layout_a (fun _ wires _ ->
        let w = wires.(0) in
        wires.(0) <-
          {
            w with
            Layout.a = Geom.pt (w.Layout.a.Geom.x +. 3.0) w.Layout.a.Geom.y;
            b = Geom.pt (w.Layout.b.Geom.x +. 3.0) w.Layout.b.Geom.y;
          })
  in
  let rb_warm = Drc.check ~deck ~cache layout_b in
  let rb_cold = Drc.check ~deck layout_b in
  Alcotest.(check (list string))
    "warm ECO = cold ECO"
    (diag_strings rb_cold.Drc.diags)
    (diag_strings rb_warm.Drc.diags);
  checkb "ECO found" true (rb_warm.Drc.diags <> []);
  checkb "only dirty tiles re-checked" true
    (rb_warm.Drc.stats.Drc.tiles_checked < rb_warm.Drc.stats.Drc.tiles_total);
  checkb "most tiles served from cache" true
    (rb_warm.Drc.stats.Drc.tiles_cached > 0)

let test_gap_hints () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let fake =
    [
      Diag.error ~rule:"DRC-WIRE-SPACING"
        (Diag.At (10.0, Problem.row_top p 1 +. 5.0))
        "synthetic congestion";
    ]
  in
  (match Drc.gap_hints p fake with
  | [ g ] -> checkb "gap near row 1" true (g = 0 || g = 1)
  | other -> Alcotest.failf "expected one hint, got %d" (List.length other));
  (* rules outside the congestion set produce no hints *)
  checkb "off-grid produces no hint" true
    (Drc.gap_hints p
       [ Diag.error ~rule:"DRC-OFF-GRID" (Diag.At (10.0, 5.0)) "x" ]
    = []);
  ignore layout

let test_svg_render () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let svg = Svg.render layout in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
    loop 0
  in
  checkb "is svg" true (contains svg "<svg");
  checkb "closes" true (contains svg "</svg>");
  checkb "has cells" true (contains svg "<rect");
  checkb "has wires" true (contains svg "<line");
  checkb "has vias" true (contains svg "<circle");
  (* one rect per cell plus the background *)
  let count_sub sub =
    let n = String.length svg and m = String.length sub in
    let rec loop i acc =
      if i + m > n then acc
      else loop (i + 1) (if String.sub svg i m = sub then acc + 1 else acc)
    in
    loop 0 0
  in
  checki "rect per cell" (Array.length layout.Layout.cells + 1) (count_sub "<rect")

(* ---------- DEF exchange ---------- *)

let test_def_roundtrip () =
  let p, r = routed_design () in
  let def = Def.of_design ~design:"add2" p r in
  let text = Def.to_string def in
  match Def.of_string text with
  | Error e -> Alcotest.fail e
  | Ok def2 ->
      Alcotest.(check string) "design" def.Def.design def2.Def.design;
      checki "components" (List.length def.Def.components) (List.length def2.Def.components);
      checki "nets" (List.length def.Def.nets) (List.length def2.Def.nets);
      (* coordinates survive the dbu conversion exactly (grid multiples) *)
      List.iter2
        (fun a b ->
          Alcotest.(check string) "name" a.Def.comp_name b.Def.comp_name;
          Alcotest.(check string) "cell" a.Def.comp_cell b.Def.comp_cell;
          checkf "x" a.Def.comp_x b.Def.comp_x;
          checkf "y" a.Def.comp_y b.Def.comp_y)
        def.Def.components def2.Def.components;
      List.iter2
        (fun a b ->
          Alcotest.(check (list (pair string string))) "pins" a.Def.net_pins b.Def.net_pins;
          checki "segments" (List.length a.Def.net_route) (List.length b.Def.net_route))
        def.Def.nets def2.Def.nets

let test_def_file_roundtrip () =
  let p, r = routed_design () in
  let def = Def.of_design p r in
  let path = Filename.temp_file "superflow" ".def" in
  Def.write_file path def;
  (match Def.read_file path with
  | Ok def2 -> checki "components" (List.length def.Def.components) (List.length def2.Def.components)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_def_flow_file_roundtrip () =
  (* a DEF dump produced by the real flow must parse back and re-render
     byte-identically — guards the writer and parser against drifting
     apart on flow-scale output *)
  let path = Filename.temp_file "superflow_flow" ".def" in
  ignore (Flow.run ~def_path:path (Circuits.benchmark "adder8"));
  let ic = open_in_bin path in
  let written = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Def.of_string written with
  | Error e -> Alcotest.fail e
  | Ok def ->
      Alcotest.(check string) "re-render byte-identical" written
        (Def.to_string def)

let test_def_rejects_garbage () =
  (match Def.of_string "hello world" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Def.of_string "VERSION 5.8 ;\nDESIGN x ;\n" with
  | Ok _ -> Alcotest.fail "accepted truncated"
  | Error _ -> ()

let test_def_matches_design () =
  let p, r = routed_design () in
  let def = Def.of_design p r in
  checki "one component per cell" (Array.length p.Problem.cells)
    (List.length def.Def.components);
  checki "one net per connection" (Array.length p.Problem.nets)
    (List.length def.Def.nets);
  (* each net names existing components *)
  let names =
    List.fold_left
      (fun acc c -> c.Def.comp_name :: acc)
      [] def.Def.components
  in
  List.iter
    (fun n ->
      List.iter
        (fun (c, _) -> checkb ("component " ^ c) true (List.mem c names))
        n.Def.net_pins)
    def.Def.nets

let test_def_apply_placement () =
  let p, r = routed_design () in
  let def = Def.of_design p r in
  let saved = Problem.copy_positions p in
  (* scramble, then restore from the DEF *)
  Array.iter (fun c -> c.Problem.x <- 0.0) p.Problem.cells;
  (match Def.apply_placement p def with
  | Ok n -> checki "all cells placed" (Array.length p.Problem.cells) n
  | Error e -> Alcotest.fail e);
  Array.iteri
    (fun i c -> checkf "x restored" saved.(i) c.Problem.x)
    p.Problem.cells;
  (* mismatched design is rejected *)
  let other = Synth_flow.run_quiet (Circuits.kogge_stone_adder 4) in
  let p2 = Problem.of_netlist Tech.default other in
  (match Def.apply_placement p2 def with
  | Ok _ -> Alcotest.fail "accepted foreign DEF"
  | Error _ -> ())

let () =
  Alcotest.run "sf_layout"
    [
      ( "gds_real",
        [
          Alcotest.test_case "roundtrip" `Quick test_gds_real_roundtrip;
          Alcotest.test_case "known value" `Quick test_gds_real_known_value;
          QCheck_alcotest.to_alcotest prop_gds_real_roundtrip;
        ] );
      ( "gds_stream",
        [
          Alcotest.test_case "roundtrip" `Quick test_gds_stream_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_gds_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_gds_rejects_garbage;
        ] );
      ( "layout",
        [
          Alcotest.test_case "build" `Quick test_layout_build;
          Alcotest.test_case "gds cells" `Quick test_layout_gds_has_all_cells;
          Alcotest.test_case "bias network" `Quick test_layout_bias_network;
          Alcotest.test_case "svg render" `Quick test_svg_render;
        ] );
      ( "def",
        [
          Alcotest.test_case "roundtrip" `Quick test_def_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_def_file_roundtrip;
          Alcotest.test_case "flow file roundtrip" `Quick
            test_def_flow_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_def_rejects_garbage;
          Alcotest.test_case "matches design" `Quick test_def_matches_design;
          Alcotest.test_case "apply placement" `Quick test_def_apply_placement;
        ] );
      ( "drc",
        [
          Alcotest.test_case "clean design" `Quick test_drc_clean_on_routed_design;
          Alcotest.test_case "DRC-WIRE-SPACING" `Quick test_rule_wire_spacing;
          Alcotest.test_case "DRC-WIRE-OVERLAP" `Quick test_rule_wire_overlap;
          Alcotest.test_case "DRC-NOTCH-01" `Quick test_rule_notch;
          Alcotest.test_case "DRC-EOL-01" `Quick test_rule_eol;
          Alcotest.test_case "DRC-ZIGZAG-SPACING" `Quick test_rule_zigzag;
          Alcotest.test_case "DRC-VIA-ALIGNMENT" `Quick test_rule_via_alignment;
          Alcotest.test_case "DRC-VIA-ENCLOSE-01" `Quick test_rule_via_enclose;
          Alcotest.test_case "DRC-WIDTH-01" `Quick test_rule_width;
          Alcotest.test_case "DRC-AREA-01" `Quick test_rule_area;
          Alcotest.test_case "DRC-OFF-GRID" `Quick test_rule_off_grid;
          Alcotest.test_case "DRC-DENSITY" `Quick test_rule_density;
          Alcotest.test_case "DRC-CELL-OVERLAP" `Quick test_rule_cell_overlap;
          Alcotest.test_case "DRC-CELL-SPACING" `Quick test_rule_cell_spacing;
          Alcotest.test_case "cell off grid" `Quick test_rule_cell_off_grid;
          Alcotest.test_case "random = brute" `Quick
            test_drc_matches_brute_on_random_layouts;
          Alcotest.test_case "tile straddling" `Quick test_drc_tile_straddling;
          Alcotest.test_case "jobs deterministic" `Quick
            test_drc_jobs_deterministic;
          Alcotest.test_case "eco incremental" `Quick test_drc_eco_incremental;
          Alcotest.test_case "gap hints" `Quick test_gap_hints;
        ] );
    ]
