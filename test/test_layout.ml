(* Tests for GDSII writing/reading, layout assembly and the DRC
   engine. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ---------- GDS real encoding ---------- *)

let test_gds_real_roundtrip () =
  List.iter
    (fun v ->
      let enc = Gds.gds_real_of_float v in
      let dec = Gds.float_of_gds_real enc in
      checkb
        (Printf.sprintf "real %g -> %g" v dec)
        true
        (Float.abs (dec -. v) <= Float.abs v *. 1e-12))
    [ 0.0; 1.0; -1.0; 0.001; 1e-9; 123456.789; -0.25; 16.0; 1.0 /. 1024.0 ]

let test_gds_real_known_value () =
  (* 1.0 = 0x4110000000000000 in GDSII excess-64 representation *)
  Alcotest.(check int64) "encode 1.0" 0x4110000000000000L (Gds.gds_real_of_float 1.0)

let prop_gds_real_roundtrip =
  QCheck.Test.make ~name:"gds 8-byte reals roundtrip" ~count:300
    QCheck.(float_range (-1e12) 1e12)
    (fun v ->
      let dec = Gds.float_of_gds_real (Gds.gds_real_of_float v) in
      Float.abs (dec -. v) <= Float.abs v *. 1e-12 +. 1e-300)

(* ---------- GDS stream roundtrip ---------- *)

let sample_lib () =
  {
    Gds.libname = "TESTLIB";
    structures =
      [
        {
          Gds.sname = "cellA";
          elements =
            [
              Gds.Boundary { layer = 1; points = [ (0.0, 0.0); (40.0, 0.0); (40.0, 30.0); (0.0, 30.0) ] };
              Gds.Path { layer = 10; width = 2.0; points = [ (0.0, 5.0); (100.0, 5.0) ] };
            ];
        };
        {
          Gds.sname = "TOP";
          elements =
            [
              Gds.Sref { sname = "cellA"; x = 120.0; y = 40.0 };
              Gds.Text { layer = 20; x = 1.0; y = 2.0; text = "hello" };
            ];
        };
      ];
  }

let test_gds_stream_roundtrip () =
  let lib = sample_lib () in
  match Gds.of_bytes (Gds.to_bytes lib) with
  | Error e -> Alcotest.fail e
  | Ok lib2 ->
      Alcotest.(check string) "libname" lib.Gds.libname lib2.Gds.libname;
      checki "structures" 2 (List.length lib2.Gds.structures);
      let a = List.hd lib2.Gds.structures in
      Alcotest.(check string) "sname" "cellA" a.Gds.sname;
      (match a.Gds.elements with
      | [ Gds.Boundary { layer; points }; Gds.Path { layer = pl; width; points = pp } ] ->
          checki "layer" 1 layer;
          checki "points" 4 (List.length points);
          checki "path layer" 10 pl;
          checkf "width" 2.0 width;
          checki "path points" 2 (List.length pp)
      | _ -> Alcotest.fail "bad elements");
      let top = List.nth lib2.Gds.structures 1 in
      (match top.Gds.elements with
      | [ Gds.Sref { sname; x; y }; Gds.Text { text; _ } ] ->
          Alcotest.(check string) "sref" "cellA" sname;
          checkf "x" 120.0 x;
          checkf "y" 40.0 y;
          Alcotest.(check string) "text" "hello" text
      | _ -> Alcotest.fail "bad top elements")

let test_gds_file_roundtrip () =
  let lib = sample_lib () in
  let path = Filename.temp_file "superflow" ".gds" in
  Gds.write_file path lib;
  (match Gds.read_file path with
  | Error e -> Alcotest.fail e
  | Ok lib2 -> checki "structures" 2 (List.length lib2.Gds.structures));
  Sys.remove path

let test_gds_rejects_garbage () =
  (match Gds.of_bytes (Bytes.of_string "not a gds file") with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Gds.of_bytes (Bytes.of_string "") with
  | Ok _ -> Alcotest.fail "accepted empty"
  | Error _ -> ()

(* ---------- Layout assembly ---------- *)

let routed_design () =
  let aoi = Circuits.kogge_stone_adder 2 in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  let r = Router.route_all p in
  (p, r)

let test_layout_build () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  checki "cells" (Array.length p.Problem.cells) (Array.length layout.Layout.cells);
  let s = Layout.stats layout in
  checkb "wires" true (s.Layout.n_wires > 0);
  checkb "jj matches problem" true (s.Layout.total_jj = Problem.jj_count p);
  checkf "wirelength matches routing" r.Router.wirelength s.Layout.wirelength;
  checki "vias match routing" r.Router.total_vias s.Layout.n_vias

let test_layout_gds_has_all_cells () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let lib = Layout.to_gds layout in
  (* TOP exists and every SREF names a defined structure *)
  let names = List.map (fun s -> s.Gds.sname) lib.Gds.structures in
  checkb "TOP present" true (List.mem "TOP" names);
  let top = List.find (fun s -> s.Gds.sname = "TOP") lib.Gds.structures in
  let srefs =
    List.filter_map
      (function Gds.Sref { sname; _ } -> Some sname | _ -> None)
      top.Gds.elements
  in
  checki "one sref per cell" (Array.length layout.Layout.cells) (List.length srefs);
  List.iter (fun s -> checkb ("struct " ^ s) true (List.mem s names)) srefs;
  (* roundtrip through the binary format *)
  match Gds.of_bytes (Gds.to_bytes lib) with
  | Ok lib2 -> checki "roundtrip structures" (List.length lib.Gds.structures) (List.length lib2.Gds.structures)
  | Error e -> Alcotest.fail e

let test_layout_bias_network () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  (* two AC lines per row plus serpentine hops plus one DC trunk *)
  let n_rows = p.Problem.n_rows in
  let expected = (2 * n_rows) + (2 * (n_rows - 1)) + 1 in
  checki "bias segment count" expected (Array.length layout.Layout.bias);
  (* serpentines span the whole die width *)
  let s = Layout.stats layout in
  checkb "bias length substantial" true
    (s.Layout.bias_wirelength > float_of_int n_rows *. Problem.row_width p);
  (* and they are emitted into the GDS *)
  let lib = Layout.to_gds layout in
  let top = List.find (fun st -> st.Gds.sname = "TOP") lib.Gds.structures in
  let clock_paths =
    List.length
      (List.filter
         (function Gds.Path { layer; _ } -> layer >= 21 && layer <= 23 | _ -> false)
         top.Gds.elements)
  in
  checki "clock paths in gds" expected clock_paths

(* ---------- DRC ---------- *)

let test_drc_clean_on_routed_design () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let violations = Drc.check layout in
  Alcotest.(check (list string)) "clean"
    []
    (List.map (fun v -> v.Drc.rule ^ ": " ^ v.Drc.detail) violations)

let perturb_layout layout f =
  let cells = Array.map (fun c -> c) layout.Layout.cells in
  let wires = Array.map (fun w -> w) layout.Layout.wires in
  let vias = Array.map (fun v -> v) layout.Layout.vias in
  f cells wires vias;
  { layout with Layout.cells; wires; vias }

let test_drc_detects_cell_overlap () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let bad =
    perturb_layout layout (fun cells _ _ ->
        (* find two cells in the same row and slam them together *)
        let c0 = cells.(0) in
        let same_row =
          Array.to_list cells
          |> List.filter (fun c ->
                 c.Layout.origin.Geom.y = c0.Layout.origin.Geom.y && c != c0)
        in
        match same_row with
        | c1 :: _ ->
            let idx = ref 0 in
            Array.iteri (fun i c -> if c == c1 then idx := i) cells;
            cells.(!idx) <-
              { c1 with Layout.origin = Geom.pt (c0.Layout.origin.Geom.x +. 10.0) c0.Layout.origin.Geom.y }
        | [] -> ())
  in
  let rules = List.map (fun v -> v.Drc.rule) (Drc.check bad) in
  checkb "overlap found" true (List.mem "cell-overlap" rules)

let test_drc_detects_offgrid () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let bad =
    perturb_layout layout (fun cells _ _ ->
        let c = cells.(0) in
        cells.(0) <- { c with Layout.origin = Geom.pt (c.Layout.origin.Geom.x +. 3.0) c.Layout.origin.Geom.y })
  in
  let rules = List.map (fun v -> v.Drc.rule) (Drc.check bad) in
  checkb "off-grid found" true (List.mem "off-grid" rules)

let test_drc_detects_wire_overlap () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let bad =
    perturb_layout layout (fun _ wires _ ->
        (* duplicate wire 0 under a different net id *)
        let w = wires.(0) in
        wires.(1) <- { w with Layout.net = w.Layout.net + 1_000_000 })
  in
  let rules = List.map (fun v -> v.Drc.rule) (Drc.check bad) in
  checkb "wire overlap found" true (List.mem "wire-overlap" rules)

let test_drc_detects_dangling_via () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let bad =
    perturb_layout layout (fun _ _ vias ->
        if Array.length vias > 0 then
          vias.(0) <- { vias.(0) with Layout.at = Geom.pt 99990.0 99990.0 })
  in
  let rules = List.map (fun v -> v.Drc.rule) (Drc.check bad) in
  checkb "via violation found" true (List.mem "via-alignment" rules)

let test_gap_hints () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let fake =
    [ { Drc.rule = "wire-spacing"; at = Geom.pt 10.0 (Problem.row_top p 1 +. 5.0); detail = "x" } ]
  in
  (match Drc.gap_hints p fake with
  | [ g ] -> checkb "gap near row 1" true (g = 0 || g = 1)
  | other -> Alcotest.failf "expected one hint, got %d" (List.length other));
  ignore layout

let test_svg_render () =
  let p, r = routed_design () in
  let layout = Layout.build p r in
  let svg = Svg.render layout in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
    loop 0
  in
  checkb "is svg" true (contains svg "<svg");
  checkb "closes" true (contains svg "</svg>");
  checkb "has cells" true (contains svg "<rect");
  checkb "has wires" true (contains svg "<line");
  checkb "has vias" true (contains svg "<circle");
  (* one rect per cell plus the background *)
  let count_sub sub =
    let n = String.length svg and m = String.length sub in
    let rec loop i acc =
      if i + m > n then acc
      else loop (i + 1) (if String.sub svg i m = sub then acc + 1 else acc)
    in
    loop 0 0
  in
  checki "rect per cell" (Array.length layout.Layout.cells + 1) (count_sub "<rect")

(* ---------- DEF exchange ---------- *)

let test_def_roundtrip () =
  let p, r = routed_design () in
  let def = Def.of_design ~design:"add2" p r in
  let text = Def.to_string def in
  match Def.of_string text with
  | Error e -> Alcotest.fail e
  | Ok def2 ->
      Alcotest.(check string) "design" def.Def.design def2.Def.design;
      checki "components" (List.length def.Def.components) (List.length def2.Def.components);
      checki "nets" (List.length def.Def.nets) (List.length def2.Def.nets);
      (* coordinates survive the dbu conversion exactly (grid multiples) *)
      List.iter2
        (fun a b ->
          Alcotest.(check string) "name" a.Def.comp_name b.Def.comp_name;
          Alcotest.(check string) "cell" a.Def.comp_cell b.Def.comp_cell;
          checkf "x" a.Def.comp_x b.Def.comp_x;
          checkf "y" a.Def.comp_y b.Def.comp_y)
        def.Def.components def2.Def.components;
      List.iter2
        (fun a b ->
          Alcotest.(check (list (pair string string))) "pins" a.Def.net_pins b.Def.net_pins;
          checki "segments" (List.length a.Def.net_route) (List.length b.Def.net_route))
        def.Def.nets def2.Def.nets

let test_def_file_roundtrip () =
  let p, r = routed_design () in
  let def = Def.of_design p r in
  let path = Filename.temp_file "superflow" ".def" in
  Def.write_file path def;
  (match Def.read_file path with
  | Ok def2 -> checki "components" (List.length def.Def.components) (List.length def2.Def.components)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_def_flow_file_roundtrip () =
  (* a DEF dump produced by the real flow must parse back and re-render
     byte-identically — guards the writer and parser against drifting
     apart on flow-scale output *)
  let path = Filename.temp_file "superflow_flow" ".def" in
  ignore (Flow.run ~def_path:path (Circuits.benchmark "adder8"));
  let ic = open_in_bin path in
  let written = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Def.of_string written with
  | Error e -> Alcotest.fail e
  | Ok def ->
      Alcotest.(check string) "re-render byte-identical" written
        (Def.to_string def)

let test_def_rejects_garbage () =
  (match Def.of_string "hello world" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Def.of_string "VERSION 5.8 ;\nDESIGN x ;\n" with
  | Ok _ -> Alcotest.fail "accepted truncated"
  | Error _ -> ()

let test_def_matches_design () =
  let p, r = routed_design () in
  let def = Def.of_design p r in
  checki "one component per cell" (Array.length p.Problem.cells)
    (List.length def.Def.components);
  checki "one net per connection" (Array.length p.Problem.nets)
    (List.length def.Def.nets);
  (* each net names existing components *)
  let names =
    List.fold_left
      (fun acc c -> c.Def.comp_name :: acc)
      [] def.Def.components
  in
  List.iter
    (fun n ->
      List.iter
        (fun (c, _) -> checkb ("component " ^ c) true (List.mem c names))
        n.Def.net_pins)
    def.Def.nets

let test_def_apply_placement () =
  let p, r = routed_design () in
  let def = Def.of_design p r in
  let saved = Problem.copy_positions p in
  (* scramble, then restore from the DEF *)
  Array.iter (fun c -> c.Problem.x <- 0.0) p.Problem.cells;
  (match Def.apply_placement p def with
  | Ok n -> checki "all cells placed" (Array.length p.Problem.cells) n
  | Error e -> Alcotest.fail e);
  Array.iteri
    (fun i c -> checkf "x restored" saved.(i) c.Problem.x)
    p.Problem.cells;
  (* mismatched design is rejected *)
  let other = Synth_flow.run_quiet (Circuits.kogge_stone_adder 4) in
  let p2 = Problem.of_netlist Tech.default other in
  (match Def.apply_placement p2 def with
  | Ok _ -> Alcotest.fail "accepted foreign DEF"
  | Error _ -> ())

let () =
  Alcotest.run "sf_layout"
    [
      ( "gds_real",
        [
          Alcotest.test_case "roundtrip" `Quick test_gds_real_roundtrip;
          Alcotest.test_case "known value" `Quick test_gds_real_known_value;
          QCheck_alcotest.to_alcotest prop_gds_real_roundtrip;
        ] );
      ( "gds_stream",
        [
          Alcotest.test_case "roundtrip" `Quick test_gds_stream_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_gds_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_gds_rejects_garbage;
        ] );
      ( "layout",
        [
          Alcotest.test_case "build" `Quick test_layout_build;
          Alcotest.test_case "gds cells" `Quick test_layout_gds_has_all_cells;
          Alcotest.test_case "bias network" `Quick test_layout_bias_network;
          Alcotest.test_case "svg render" `Quick test_svg_render;
        ] );
      ( "def",
        [
          Alcotest.test_case "roundtrip" `Quick test_def_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_def_file_roundtrip;
          Alcotest.test_case "flow file roundtrip" `Quick
            test_def_flow_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_def_rejects_garbage;
          Alcotest.test_case "matches design" `Quick test_def_matches_design;
          Alcotest.test_case "apply placement" `Quick test_def_apply_placement;
        ] );
      ( "drc",
        [
          Alcotest.test_case "clean design" `Quick test_drc_clean_on_routed_design;
          Alcotest.test_case "cell overlap" `Quick test_drc_detects_cell_overlap;
          Alcotest.test_case "off grid" `Quick test_drc_detects_offgrid;
          Alcotest.test_case "wire overlap" `Quick test_drc_detects_wire_overlap;
          Alcotest.test_case "dangling via" `Quick test_drc_detects_dangling_via;
          Alcotest.test_case "gap hints" `Quick test_gap_hints;
        ] );
    ]
