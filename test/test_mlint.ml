(* Tests for sf_mlint: one seeded fixture per SL-* rule (each must fire
   exactly once, at the expected file:line), suppression and baseline
   round-trips, the registry lock-step with sf_check's Rules, and the
   self-run: the repo at HEAD must lint clean. *)

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let known_ids = List.map (fun (e : Rules.entry) -> e.Rules.id) Rules.all

let check_fixture ~rule ~path ~line src =
  let fs, _supp =
    Mlint.check_source ~known_ids (Sl_source.of_string ~path src)
  in
  checki (rule ^ " fires exactly once") 1 (List.length fs);
  let f = List.hd fs in
  checks (rule ^ " rule id") rule f.Mlint.rule;
  checks (rule ^ " path") path f.Mlint.path;
  checki (rule ^ " line") line f.Mlint.line

(* ---------- one fixture per rule ---------- *)

let test_hash () =
  check_fixture ~rule:"SL-HASH-01" ~path:"lib/fix/f.ml" ~line:2
    "let f h =\n  Hashtbl.iter (fun _ v -> ignore v) h\n"

let test_hash_sanitized () =
  (* a sort in the same top-level definition sanitizes the iteration *)
  let fs, _ =
    Mlint.check_source ~known_ids
      (Sl_source.of_string ~path:"lib/fix/f.ml"
         "let f h = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])\n")
  in
  checki "sorted fold is clean" 0 (List.length fs)

let test_time () =
  check_fixture ~rule:"SL-TIME-01" ~path:"lib/fix/f.ml" ~line:1
    "let t () = Sys.time ()\n"

let test_marshal () =
  check_fixture ~rule:"SL-MARSHAL-01" ~path:"lib/fix/f.ml" ~line:1
    "let s x = Marshal.to_string x []\n"

let test_poly () =
  check_fixture ~rule:"SL-POLY-01" ~path:"lib/place/f.ml" ~line:1
    "let s l = List.sort compare l\n"

let test_poly_scoped () =
  (* outside the stage libraries the rule stays quiet *)
  let fs, _ =
    Mlint.check_source ~known_ids
      (Sl_source.of_string ~path:"lib/util/f.ml" "let s l = List.sort compare l\n")
  in
  checki "poly compare outside stage dirs" 0 (List.length fs)

let test_global () =
  check_fixture ~rule:"SL-GLOBAL-01" ~path:"lib/fix/f.ml" ~line:1
    "let cache = ref 0\n"

let test_catch () =
  check_fixture ~rule:"SL-CATCH-01" ~path:"lib/fix/f.ml" ~line:1
    "let f g = try g () with _ -> 0\n"

let test_label () =
  check_fixture ~rule:"SL-LABEL-01" ~path:"lib/fix/f.ml" ~line:1
    "let f xs = Parallel.parallel_map (fun x -> x) xs\n"

let test_label_ok () =
  let fs, _ =
    Mlint.check_source ~known_ids
      (Sl_source.of_string ~path:"lib/fix/f.ml"
         "let f xs = Parallel.parallel_map ~label:\"fix\" (fun x -> x) xs\n")
  in
  checki "labeled Parallel call is clean" 0 (List.length fs)

let test_print () =
  check_fixture ~rule:"SL-PRINT-01" ~path:"lib/fix/f.ml" ~line:1
    "let f () = print_endline \"hi\"\n"

let test_exit () =
  check_fixture ~rule:"SL-EXIT-01" ~path:"lib/fix/f.ml" ~line:1
    "let f () = exit 1\n"

let test_ruleid () =
  check_fixture ~rule:"SL-RULEID-01" ~path:"lib/fix/f.ml" ~line:1
    "let r = \"ZZ-FAKE-99\"\n"

let test_ruleid_known () =
  let fs, _ =
    Mlint.check_source ~known_ids
      (Sl_source.of_string ~path:"lib/fix/f.ml" "let r = \"SL-HASH-01\"\n")
  in
  checki "registered id is clean" 0 (List.length fs)

let test_parse () =
  check_fixture ~rule:"SL-PARSE-01" ~path:"lib/fix/f.ml" ~line:1
    "let let let\n"

(* ---------- suppression ---------- *)

let test_suppress_above () =
  let fs, supp =
    Mlint.check_source ~known_ids
      (Sl_source.of_string ~path:"lib/fix/f.ml"
         "(* sl-ignore: SL-EXIT-01 fixture exercises the marker *)\nlet f () = exit 1\n")
  in
  checki "suppressed finding dropped" 0 (List.length fs);
  checki "suppression counted" 1 supp

let test_suppress_trailing () =
  let fs, supp =
    Mlint.check_source ~known_ids
      (Sl_source.of_string ~path:"lib/fix/f.ml"
         "let f () = exit 1 (* sl-ignore: SL-EXIT-01 fixture *)\n")
  in
  checki "trailing marker suppresses" 0 (List.length fs);
  checki "counted" 1 supp

let test_suppress_wrong_rule () =
  let fs, supp =
    Mlint.check_source ~known_ids
      (Sl_source.of_string ~path:"lib/fix/f.ml"
         "(* sl-ignore: SL-HASH-01 names the wrong rule *)\nlet f () = exit 1\n")
  in
  checki "wrong rule id does not suppress" 1 (List.length fs);
  checki "nothing counted" 0 supp

(* ---------- baseline round-trip on a temp tree ---------- *)

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let make_tree () =
  let root = Filename.temp_dir "mlint_test" "" in
  Sys.mkdir (Filename.concat root "lib") 0o755;
  Sys.mkdir (Filename.concat root "lib/fix") 0o755;
  write_file (Filename.concat root "lib/fix/bad.ml") "let f () = exit 1\n";
  root

let test_run_finds () =
  let root = make_tree () in
  match Mlint.run ~known_ids ~root () with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      checki "one error" 1 rep.Mlint.errors;
      let f = List.hd rep.Mlint.findings in
      checks "path is root-relative" "lib/fix/bad.ml" f.Mlint.path;
      (* the serialized finding is a valid baseline entry *)
      Alcotest.(check (list string))
        "baseline lines" [ "SL-EXIT-01 lib/fix/bad.ml:1" ]
        (Mlint.baseline_lines rep.Mlint.findings)

let test_baseline_roundtrip () =
  let root = make_tree () in
  let baseline = [ "# header"; ""; "SL-EXIT-01 lib/fix/bad.ml:1" ] in
  match Mlint.run ~known_ids ~baseline ~root () with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      checki "baselined finding gone" 0 rep.Mlint.errors;
      checki "counted as baselined" 1 rep.Mlint.baselined;
      Alcotest.(check (list string)) "no stale entries" [] rep.Mlint.stale_baseline

let test_baseline_stale () =
  let root = make_tree () in
  let baseline = [ "SL-EXIT-01 lib/fix/bad.ml:1"; "SL-EXIT-01 lib/fix/gone.ml:9" ] in
  match Mlint.run ~known_ids ~baseline ~root () with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      Alcotest.(check (list string))
        "unmatched entry reported stale" [ "SL-EXIT-01 lib/fix/gone.ml:9" ]
        rep.Mlint.stale_baseline

(* ---------- registry lock-step ---------- *)

let test_registry_sync () =
  List.iter
    (fun (id, sev) ->
      match Rules.find id with
      | None -> Alcotest.failf "%s missing from Rules registry" id
      | Some e ->
          checks (id ^ " owned by the mlint pass") "mlint" e.Rules.pass;
          checkb (id ^ " severity matches") true (e.Rules.severity = sev);
          checkb (id ^ " explainable") true
            (match Rules.explain id with Ok _ -> true | Error _ -> false))
    Mlint.rules;
  let registered =
    List.filter_map
      (fun (e : Rules.entry) -> if e.Rules.pass = "mlint" then Some e.Rules.id else None)
      Rules.all
  in
  Alcotest.(check (list string))
    "every mlint-pass registry entry is implemented" registered Mlint.rule_ids;
  Alcotest.(check (list string)) "registry self-check" [] (Rules.self_check ())

(* ---------- rendering ---------- *)

let test_render () =
  let fs, _ =
    Mlint.check_source ~known_ids
      (Sl_source.of_string ~path:"lib/fix/f.ml" "let f () = exit 1\n")
  in
  let f = List.hd fs in
  let txt = Mlint.render_text f in
  checkb "text names the rule" true (contains_sub ~sub:"SL-EXIT-01" txt);
  checkb "text carries file:line:col" true
    (contains_sub ~sub:"lib/fix/f.ml:1:11" txt);
  let js = Mlint.render_json f in
  checkb "json carries the witness snippet" true (contains_sub ~sub:"exit 1" js)

(* ---------- self-run: the repo lints clean ---------- *)

let find_repo_root () =
  let looks_like_root d =
    Sys.file_exists (Filename.concat d "dune-project")
    && Sys.is_directory (Filename.concat d "lib")
    && Sys.is_directory (Filename.concat d "bin")
  in
  let rec up d n =
    if n = 0 then None
    else if looks_like_root d then Some d
    else up (Filename.dirname d) (n - 1)
  in
  up (Sys.getcwd ()) 8

let test_self_run () =
  match find_repo_root () with
  | None -> Alcotest.fail "cannot locate the repo root from the test sandbox"
  | Some root -> (
      match Mlint.run ~known_ids ~root () with
      | Error e -> Alcotest.fail e
      | Ok rep ->
          List.iter
            (fun f -> Printf.eprintf "unexpected: %s\n" (Mlint.render_text f))
            rep.Mlint.findings;
          checki "repo lints clean: no errors" 0 rep.Mlint.errors;
          checki "repo lints clean: no warnings" 0 rep.Mlint.warnings;
          checkb "scanned a real tree" true (rep.Mlint.files > 50))

let () =
  Alcotest.run "sf_mlint"
    [
      ( "rules fire once",
        [
          Alcotest.test_case "SL-HASH-01" `Quick test_hash;
          Alcotest.test_case "SL-HASH-01 sanitized" `Quick test_hash_sanitized;
          Alcotest.test_case "SL-TIME-01" `Quick test_time;
          Alcotest.test_case "SL-MARSHAL-01" `Quick test_marshal;
          Alcotest.test_case "SL-POLY-01" `Quick test_poly;
          Alcotest.test_case "SL-POLY-01 scope" `Quick test_poly_scoped;
          Alcotest.test_case "SL-GLOBAL-01" `Quick test_global;
          Alcotest.test_case "SL-CATCH-01" `Quick test_catch;
          Alcotest.test_case "SL-LABEL-01" `Quick test_label;
          Alcotest.test_case "SL-LABEL-01 labeled" `Quick test_label_ok;
          Alcotest.test_case "SL-PRINT-01" `Quick test_print;
          Alcotest.test_case "SL-EXIT-01" `Quick test_exit;
          Alcotest.test_case "SL-RULEID-01" `Quick test_ruleid;
          Alcotest.test_case "SL-RULEID-01 known" `Quick test_ruleid_known;
          Alcotest.test_case "SL-PARSE-01" `Quick test_parse;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "marker above" `Quick test_suppress_above;
          Alcotest.test_case "marker trailing" `Quick test_suppress_trailing;
          Alcotest.test_case "wrong rule" `Quick test_suppress_wrong_rule;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "run finds" `Quick test_run_finds;
          Alcotest.test_case "round-trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "stale entries" `Quick test_baseline_stale;
        ] );
      ( "registry",
        [ Alcotest.test_case "lock-step with Rules" `Quick test_registry_sync ] );
      ("rendering", [ Alcotest.test_case "text and json" `Quick test_render ]);
      ("self-run", [ Alcotest.test_case "repo lints clean" `Quick test_self_run ]);
    ]
