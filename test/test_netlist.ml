(* Tests for the netlist IR, truth tables, simulation and the .bench
   parser. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Small helper: y = (a & b) | ~c *)
let sample_netlist () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Input [||] in
  let c = Netlist.add nl ~name:"c" Netlist.Input [||] in
  let ab = Netlist.add nl Netlist.And [| a; b |] in
  let nc = Netlist.add nl Netlist.Not [| c |] in
  let y = Netlist.add nl Netlist.Or [| ab; nc |] in
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| y |]);
  nl

(* ---------- Netlist structure ---------- *)

let test_add_and_query () =
  let nl = sample_netlist () in
  checki "size" 7 (Netlist.size nl);
  checki "inputs" 3 (List.length (Netlist.inputs nl));
  checki "outputs" 1 (List.length (Netlist.outputs nl));
  checki "arity of and" 2 (Netlist.arity Netlist.And);
  checki "arity of maj" 3 (Netlist.arity Netlist.Maj);
  checki "arity of spl" 1 (Netlist.arity (Netlist.Splitter 3))

let test_add_arity_checked () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  checkb "raises" true
    (try
       ignore (Netlist.add nl Netlist.And [| a |]);
       false
     with Invalid_argument _ -> true)

let test_dangling_fanin () =
  let nl = Netlist.create () in
  checkb "raises" true
    (try
       ignore (Netlist.add nl Netlist.Not [| 5 |]);
       false
     with Invalid_argument _ -> true)

let test_fanout_counts () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let x = Netlist.add nl Netlist.Not [| a |] in
  let y = Netlist.add nl Netlist.Not [| a |] in
  let z = Netlist.add nl Netlist.And [| x; y |] in
  ignore (Netlist.add nl Netlist.Output [| z |]);
  let counts = Netlist.fanout_counts nl in
  checki "a has 2 fanouts" 2 counts.(a);
  checki "z has 1 fanout" 1 counts.(z);
  let outs = Netlist.fanouts nl in
  checki "a fanout list" 2 (List.length outs.(a))

let test_topo_order () =
  let nl = sample_netlist () in
  let order = Netlist.topo_order nl in
  let pos = Array.make (Netlist.size nl) 0 in
  Array.iteri (fun i id -> pos.(id) <- i) order;
  Netlist.iter nl (fun nd ->
      Array.iter
        (fun f -> checkb "fanin before node" true (pos.(f) < pos.(nd.Netlist.id)))
        nd.Netlist.fanins)

let test_levelize () =
  let nl = sample_netlist () in
  let depth = Netlist.levelize nl in
  checki "depth" 2 depth;
  List.iter (fun i -> checki "input phase" 0 (Netlist.phase nl i)) (Netlist.inputs nl)

let test_is_balanced_detects () =
  let nl = sample_netlist () in
  ignore (Netlist.levelize nl);
  (* or(ab@1, nc@1) is balanced here, but inputs at phase 0 feeding
     the or at phase 2 would not be; this netlist IS balanced. *)
  checkb "sample is balanced" true (Netlist.is_balanced nl);
  let nl2 = Netlist.create () in
  let a = Netlist.add nl2 Netlist.Input [||] in
  let x = Netlist.add nl2 Netlist.Not [| a |] in
  let y = Netlist.add nl2 Netlist.And [| x; a |] in
  ignore (Netlist.add nl2 Netlist.Output [| y |]);
  ignore (Netlist.levelize nl2);
  checkb "unbalanced detected" false (Netlist.is_balanced nl2)

let test_validate_ok () =
  match Netlist.validate (sample_netlist ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_copy_independent () =
  let nl = sample_netlist () in
  let nl2 = Netlist.copy nl in
  checki "same size" (Netlist.size nl) (Netlist.size nl2);
  checkb "equivalent" true (Sim.equivalent nl nl2)

let test_set_kind_io_protected () =
  let nl = sample_netlist () in
  let input = List.hd (Netlist.inputs nl) in
  checkb "raises" true
    (try
       Netlist.set_kind nl input Netlist.Buf;
       false
     with Invalid_argument _ -> true)

let test_to_dot_nonempty () =
  let dot = Netlist.to_dot (sample_netlist ()) in
  checkb "has digraph" true (String.length dot > 20)

(* ---------- Truth ---------- *)

let test_truth_vars () =
  (* var 0 over 2 vars: f(a,b)=a -> truth table 0b1010 *)
  checki "var0" 0b1010 (Truth.var 0 2);
  checki "var1" 0b1100 (Truth.var 1 2);
  checki "mask2" 0b1111 (Truth.mask 2)

let test_truth_ops () =
  let a = Truth.var 0 3 and b = Truth.var 1 3 and c = Truth.var 2 3 in
  let f = Truth.maj a b c in
  (* majority agrees with naive evaluation *)
  for i = 0 to 7 do
    let bits = Array.init 3 (fun k -> (i lsr k) land 1 = 1) in
    let expect =
      (bits.(0) && bits.(1)) || (bits.(0) && bits.(2)) || (bits.(1) && bits.(2))
    in
    checkb "maj pointwise" expect (Truth.eval f bits)
  done;
  checki "and as maj with const0" (Truth.and_ a b) (Truth.maj a b (Truth.const false 3));
  checki "or as maj with const1" (Truth.or_ a b) (Truth.maj a b (Truth.const true 3))

let test_truth_of_fun () =
  let xor3 = Truth.of_fun 3 (fun v -> v.(0) <> v.(1) <> v.(2)) in
  checki "xor3"
    (Truth.xor (Truth.xor (Truth.var 0 3) (Truth.var 1 3)) (Truth.var 2 3))
    xor3

let test_truth_support () =
  let a = Truth.var 0 3 in
  checkb "depends on 0" true (Truth.depends_on 3 a 0);
  checkb "not on 1" false (Truth.depends_on 3 a 1);
  checki "support of maj" 3 (Truth.support_size 3 (Truth.maj a (Truth.var 1 3) (Truth.var 2 3)));
  checki "support of const" 0 (Truth.support_size 3 (Truth.const true 3))

let test_truth_not_involution () =
  let f = Truth.of_fun 3 (fun v -> v.(0) && not v.(2)) in
  checki "double negation" f (Truth.not_ 3 (Truth.not_ 3 f))

let test_truth_to_string () =
  Alcotest.(check string) "render" "01" (Truth.to_string 1 (Truth.var 0 1))

(* ---------- Sim ---------- *)

let test_eval_sample () =
  let nl = sample_netlist () in
  (* y = (a&b) | ~c *)
  let cases =
    [
      ([| false; false; false |], true);
      ([| false; false; true |], false);
      ([| true; true; true |], true);
      ([| true; false; true |], false);
    ]
  in
  List.iter
    (fun (ins, expect) ->
      let outs = Sim.eval nl ins in
      checkb "eval" expect outs.(0))
    cases

let test_eval_all_kinds () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let c = Netlist.add nl Netlist.Input [||] in
  let outs =
    [
      Netlist.add nl Netlist.And [| a; b |];
      Netlist.add nl Netlist.Or [| a; b |];
      Netlist.add nl Netlist.Nand [| a; b |];
      Netlist.add nl Netlist.Nor [| a; b |];
      Netlist.add nl Netlist.Xor [| a; b |];
      Netlist.add nl Netlist.Xnor [| a; b |];
      Netlist.add nl Netlist.Maj [| a; b; c |];
      Netlist.add nl Netlist.Buf [| a |];
      Netlist.add nl Netlist.Not [| a |];
      Netlist.add nl (Netlist.Const true) [||];
      Netlist.add nl (Netlist.Const false) [||];
      Netlist.add nl (Netlist.Splitter 2) [| a |];
    ]
  in
  List.iter (fun o -> ignore (Netlist.add nl Netlist.Output [| o |])) outs;
  for i = 0 to 7 do
    let va = i land 1 = 1 and vb = (i lsr 1) land 1 = 1 and vc = (i lsr 2) land 1 = 1 in
    let r = Sim.eval nl [| va; vb; vc |] in
    let expect =
      [|
        va && vb;
        va || vb;
        not (va && vb);
        not (va || vb);
        va <> vb;
        va = vb;
        (va && vb) || (va && vc) || (vb && vc);
        va;
        not va;
        true;
        false;
        va;
      |]
    in
    Array.iteri (fun k e -> checkb (Printf.sprintf "kind %d case %d" k i) e r.(k)) expect
  done

let test_equivalent_positive_negative () =
  let nl = sample_netlist () in
  checkb "self-equivalent" true (Sim.equivalent nl nl);
  let nl2 = Netlist.create () in
  let a = Netlist.add nl2 Netlist.Input [||] in
  let b = Netlist.add nl2 Netlist.Input [||] in
  let c = Netlist.add nl2 Netlist.Input [||] in
  let ab = Netlist.add nl2 Netlist.And [| a; b |] in
  let y = Netlist.add nl2 Netlist.Or [| ab; c |] in
  (* c not inverted: different function *)
  ignore (Netlist.add nl2 Netlist.Output [| y |]);
  checkb "different function detected" false (Sim.equivalent nl nl2)

let test_signature_deterministic () =
  let nl = sample_netlist () in
  Alcotest.(check (array int)) "stable" (Sim.signature nl) (Sim.signature nl)

let prop_sim_word_matches_scalar =
  QCheck.Test.make ~name:"bit-parallel simulation matches scalar" ~count:100
    QCheck.(triple bool bool bool)
    (fun (a, b, c) ->
      let nl = sample_netlist () in
      let scalar = (Sim.eval nl [| a; b; c |]).(0) in
      let words =
        Array.map (fun x -> if x then -1 land ((1 lsl 62) - 1) else 0) [| a; b; c |]
      in
      let word = (Sim.eval_words nl words).(0) in
      (word land 1 = 1) = scalar)

(* ---------- BDD ---------- *)

let test_bdd_basic_ops () =
  let m = Bdd.manager 3 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  checkb "a&b != a|b" false (Bdd.equal (Bdd.band m a b) (Bdd.bor m a b));
  checkb "a&a = a" true (Bdd.equal (Bdd.band m a a) a);
  checkb "a^a = 0" true (Bdd.equal (Bdd.bxor m a a) (Bdd.zero m));
  checkb "~~a = a" true (Bdd.equal (Bdd.bnot m (Bdd.bnot m a)) a);
  (* De Morgan *)
  checkb "de morgan" true
    (Bdd.equal
       (Bdd.bnot m (Bdd.band m a b))
       (Bdd.bor m (Bdd.bnot m a) (Bdd.bnot m b)))

let test_bdd_canonical_maj () =
  let m = Bdd.manager 3 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  (* majority via two different formulas reaches the same node *)
  let maj1 = Bdd.bmaj m a b c in
  let ab = Bdd.band m a b in
  let ac = Bdd.band m a c in
  let bc = Bdd.band m b c in
  let maj2 = Bdd.bor m (Bdd.bor m ab ac) bc in
  checkb "canonical" true (Bdd.equal maj1 maj2);
  Alcotest.(check (float 1e-9)) "4 satisfying rows" 4.0 (Bdd.sat_count m maj1)

let test_bdd_eval_matches_sim () =
  let nl = sample_netlist () in
  let m = Bdd.manager 3 in
  let outs = Bdd.of_netlist m nl in
  for v = 0 to 7 do
    let ins = Array.init 3 (fun k -> (v lsr k) land 1 = 1) in
    checkb "bdd eval = sim" ((Sim.eval nl ins).(0)) (Bdd.eval outs.(0) ins)
  done

let test_bdd_equivalence_positive () =
  let nl = sample_netlist () in
  (match Bdd.check_equivalence nl (Netlist.copy nl) with
  | Bdd.Equivalent -> ()
  | _ -> Alcotest.fail "copy should be equivalent");
  (* synthesis preserves function — formally this time *)
  let aoi = Circuits.kogge_stone_adder 4 in
  match Bdd.check_equivalence aoi (Netlist.copy aoi) with
  | Bdd.Equivalent -> ()
  | _ -> Alcotest.fail "adder should equal itself"

let test_bdd_counterexample () =
  let nl_a = sample_netlist () in
  let nl_b = Netlist.create () in
  let a = Netlist.add nl_b Netlist.Input [||] in
  let b = Netlist.add nl_b Netlist.Input [||] in
  let c = Netlist.add nl_b Netlist.Input [||] in
  let ab = Netlist.add nl_b Netlist.And [| a; b |] in
  let y = Netlist.add nl_b Netlist.Or [| ab; c |] in
  ignore (Netlist.add nl_b Netlist.Output [| y |]);
  match Bdd.check_equivalence nl_a nl_b with
  | Bdd.Different cex when Array.length cex = 3 ->
      (* the counterexample must actually distinguish them *)
      checkb "cex distinguishes" true
        ((Sim.eval nl_a cex).(0) <> (Sim.eval nl_b cex).(0))
  | Bdd.Different _ -> Alcotest.fail "bad counterexample arity"
  | Bdd.Equivalent -> Alcotest.fail "should differ"
  | Bdd.Too_large -> Alcotest.fail "should be tiny"

let test_bdd_limit () =
  (* a 16-bit multiplier blows a tiny node budget *)
  let nl = Circuits.array_multiplier 8 in
  match Bdd.check_equivalence ~max_nodes:500 nl (Netlist.copy nl) with
  | Bdd.Too_large -> ()
  | _ -> Alcotest.fail "expected Too_large with a 500-node budget"

let prop_bdd_agrees_with_sim =
  QCheck.Test.make ~name:"bdd equivalence agrees with exhaustive simulation" ~count:25
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (s1, s2) ->
      let nl_a = Circuits.iscas_like ~seed:s1 ~pi:5 ~po:2 ~gates:15 ~depth:4 in
      let nl_b = Circuits.iscas_like ~seed:s2 ~pi:5 ~po:2 ~gates:15 ~depth:4 in
      let formal =
        match Bdd.check_equivalence nl_a nl_b with
        | Bdd.Equivalent -> true
        | Bdd.Different _ -> false
        | Bdd.Too_large -> QCheck.assume_fail ()
      in
      formal = Sim.equivalent nl_a nl_b)

(* ---------- Fault simulation / test generation ---------- *)

let test_fault_detects_basic () =
  (* and(a,b): output stuck-at-0 is detected by (1,1); stuck-at-1 by
     anything with a 0 input *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let g = Netlist.add nl Netlist.And [| a; b |] in
  ignore (Netlist.add nl Netlist.Output [| g |]);
  checkb "sa0 by 11" true (Fault.detects nl { Fault.node = g; stuck_at = false } [| true; true |]);
  checkb "sa0 not by 01" false (Fault.detects nl { Fault.node = g; stuck_at = false } [| false; true |]);
  checkb "sa1 by 01" true (Fault.detects nl { Fault.node = g; stuck_at = true } [| false; true |]);
  checkb "sa1 not by 11" false (Fault.detects nl { Fault.node = g; stuck_at = true } [| true; true |])

let test_fault_universe () =
  let nl = sample_netlist () in
  (* 3 inputs + 3 gates, two polarities each; outputs excluded *)
  checki "fault count" 12 (List.length (Fault.all_faults nl))

let test_fault_generation_high_coverage () =
  let nl = Circuits.kogge_stone_adder 4 in
  let t = Fault.generate ~seed:3 nl in
  checkb
    (Printf.sprintf "coverage %.2f >= 0.95" t.Fault.achieved)
    true (t.Fault.achieved >= 0.95);
  (* grading the generated set reproduces the reported coverage *)
  let graded, undetected = Fault.coverage nl t.Fault.vectors in
  Alcotest.(check (float 1e-9)) "self-consistent" t.Fault.achieved graded;
  checki "undetected lists agree" (List.length t.Fault.undetected) (List.length undetected)

let test_fault_redundant_logic () =
  (* or(y, and(a, ~a)): the and output is constant 0, so its stuck-at-0
     fault is undetectable -> coverage < 100% and the fault is reported *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let y = Netlist.add nl Netlist.Input [||] in
  let na = Netlist.add nl Netlist.Not [| a |] in
  let dead = Netlist.add nl Netlist.And [| a; na |] in
  let out = Netlist.add nl Netlist.Or [| y; dead |] in
  ignore (Netlist.add nl Netlist.Output [| out |]);
  let t = Fault.generate ~seed:5 ~target:1.0 nl in
  checkb "not full coverage" true (t.Fault.achieved < 1.0);
  checkb "dead-gate sa0 undetected" true
    (List.exists
       (fun f -> f.Fault.node = dead && f.Fault.stuck_at = false)
       t.Fault.undetected)

let test_fault_vectors_compact () =
  (* every kept vector pulled its weight: removing detection power is
     monotone, so the kept set is no larger than the budget and far
     smaller than exhaustive *)
  let nl = Circuits.parallel_counter 8 in
  let t = Fault.generate ~seed:7 nl in
  checkb "nonempty" true (t.Fault.vectors <> []);
  checkb "compact" true (List.length t.Fault.vectors < 200)

let test_fault_diagnosis () =
  (* inject a known fault into a simulated die: the dictionary's
     suspect list contains it, and a healthy die matches no fault *)
  let nl = Circuits.kogge_stone_adder 2 in
  let tests = Fault.generate ~seed:9 nl in
  let vectors = tests.Fault.vectors in
  let injected =
    List.find
      (fun f ->
        (match Netlist.kind nl f.Fault.node with Netlist.And -> true | _ -> false)
        && not (List.mem f tests.Fault.undetected))
      (Fault.all_faults nl)
  in
  let observed = List.map (fun v -> Fault.faulty_response nl injected v) vectors in
  let suspects = Fault.diagnose nl vectors observed in
  checkb "injected fault among suspects" true (List.mem injected suspects);
  (* every suspect reproduces the observations on a fresh vector too *)
  checkb "suspects nonempty" true (suspects <> []);
  (* healthy die: responses = good machine -> no fault matches all
     (tests reached ~99% coverage, so only undetected faults could
     masquerade; filter them out of the expectation) *)
  let healthy = List.map (fun v -> Sim.eval nl v) vectors in
  let suspects_healthy = Fault.diagnose nl vectors healthy in
  List.iter
    (fun f -> checkb "healthy suspects are undetectable faults" true
        (List.mem f tests.Fault.undetected))
    suspects_healthy

(* ---------- structural stats ---------- *)

let test_stats_sample () =
  let s = Netlist_stats.analyze (sample_netlist ()) in
  checki "nodes" 7 s.Netlist_stats.nodes;
  checki "inputs" 3 s.Netlist_stats.inputs;
  checki "gates" 3 s.Netlist_stats.gates;
  checki "depth" 2 s.Netlist_stats.depth;
  checkb "mix has and" true (List.mem_assoc "and" s.Netlist_stats.gate_mix);
  checki "widths sum to non-output nodes" 6
    (Array.fold_left ( + ) 0 s.Netlist_stats.width_per_level)

let test_stats_balanced_aqfp_has_low_variance_info () =
  let aqfp = Synth_flow.run_quiet (Circuits.kogge_stone_adder 4) in
  let s = Netlist_stats.analyze aqfp in
  checkb "depth positive" true (s.Netlist_stats.depth > 0);
  checkb "cv computed" true (s.Netlist_stats.width_cv >= 0.0);
  (* after splitter insertion, max fanout is the splitter arity *)
  checkb "fanout bounded" true (s.Netlist_stats.fanout_max <= 3);
  let hist_total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.Netlist_stats.fanout_histogram in
  checki "histogram covers all non-output nodes" (s.Netlist_stats.inputs + s.Netlist_stats.gates) hist_total

(* ---------- VCD export ---------- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  loop 0

let test_vcd_structure () =
  let nl = sample_netlist () in
  let vectors = [ [| false; false; false |]; [| true; true; false |]; [| true; true; true |] ] in
  let vcd = Vcd.of_vectors nl vectors in
  checkb "header" true (contains_sub vcd "$enddefinitions $end");
  checkb "timescale" true (contains_sub vcd "$timescale 1ns $end");
  checkb "declares a" true (contains_sub vcd "$var wire 1 ! a $end");
  checkb "time markers" true (contains_sub vcd "#0" && contains_sub vcd "#2");
  (* the y output toggles: (0,0,0)->1, (1,1,0)->1, (1,1,1)->1... check
     initial dump lines exist *)
  checkb "value changes recorded" true (contains_sub vcd "1" || contains_sub vcd "0")

let test_vcd_change_compression () =
  (* a constant input only appears once in the dump *)
  let nl = sample_netlist () in
  let vectors = List.init 5 (fun _ -> [| true; true; false |]) in
  let vcd = Vcd.of_vectors nl vectors in
  let count_occurrences sub =
    let n = String.length vcd and m = String.length sub in
    let rec loop i acc =
      if i + m > n then acc
      else loop (i + 1) (if String.sub vcd i m = sub then acc + 1 else acc)
    in
    loop 0 0
  in
  (* code for the first declared signal is "!": its value line "1!" or
     "0!" appears exactly once across the 5 identical steps *)
  checki "no redundant dumps" 1 (count_occurrences "1!" + count_occurrences "0!")

let test_vcd_internal_signals () =
  let nl = sample_netlist () in
  let thin = Vcd.of_vectors nl [ [| true; false; true |] ] in
  let fat = Vcd.of_vectors ~dump_internal:true nl [ [| true; false; true |] ] in
  checkb "internal dump is larger" true (String.length fat > String.length thin)

let test_vcd_rejects_bad_arity () =
  let nl = sample_netlist () in
  checkb "raises" true
    (try
       ignore (Vcd.of_vectors nl [ [| true |] ]);
       false
     with Invalid_argument _ -> true)

(* ---------- Bench parser ---------- *)

let bench_src =
  {|
# tiny example
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
t1 = AND(a, b)
t2 = NOT(c)
y = OR(t1, t2)
|}

let test_bench_parse () =
  match Bench_parser.parse bench_src with
  | Error e -> Alcotest.fail e
  | Ok nl ->
      checki "inputs" 3 (List.length (Netlist.inputs nl));
      checki "outputs" 1 (List.length (Netlist.outputs nl));
      checkb "same function as hand-built" true (Sim.equivalent nl (sample_netlist ()))

let test_bench_nary_decomposition () =
  let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = NAND(a,b,c,d)\n" in
  match Bench_parser.parse src with
  | Error e -> Alcotest.fail e
  | Ok nl ->
      for i = 0 to 15 do
        let ins = Array.init 4 (fun k -> (i lsr k) land 1 = 1) in
        let expect = not (Array.for_all Fun.id ins) in
        checkb "nand4" expect (Sim.eval nl ins).(0)
      done

let test_bench_use_before_def () =
  let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(t)\nt = NOT(a)\n" in
  match Bench_parser.parse src with
  | Error e -> Alcotest.fail e
  | Ok nl -> checkb "buffer function" true ((Sim.eval nl [| true |]).(0) = true)

let test_bench_errors () =
  let cases =
    [
      "y = FROB(a)\nINPUT(a)\nOUTPUT(y)\n";
      "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n";
      "INPUT(a)\nOUTPUT(y)\n";
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n";
    ]
  in
  List.iter
    (fun src ->
      match Bench_parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("should reject: " ^ src))
    cases

let test_bench_cycle_detected () =
  let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n" in
  match Bench_parser.parse src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle accepted"

let test_bench_error_line_numbers () =
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  (* the undefined reference is made on line 3 *)
  (match Bench_parser.parse "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n" with
  | Error e ->
      checkb ("undefined signal located: " ^ e) true (starts_with "line 3:" e)
  | Ok _ -> Alcotest.fail "accepted undefined signal");
  (* the edge closing the cycle is on line 4 (z = NOT(y)) *)
  match Bench_parser.parse "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n" with
  | Error e -> checkb ("cycle located: " ^ e) true (starts_with "line 4:" e)
  | Ok _ -> Alcotest.fail "cycle accepted"

let test_bench_roundtrip () =
  let nl = sample_netlist () in
  let text = Bench_parser.to_bench nl in
  match Bench_parser.parse text with
  | Error e -> Alcotest.fail e
  | Ok nl2 -> checkb "roundtrip equivalent" true (Sim.equivalent nl nl2)

let () =
  Alcotest.run "sf_netlist"
    [
      ( "netlist",
        [
          Alcotest.test_case "add/query" `Quick test_add_and_query;
          Alcotest.test_case "arity checked" `Quick test_add_arity_checked;
          Alcotest.test_case "dangling fanin" `Quick test_dangling_fanin;
          Alcotest.test_case "fanout counts" `Quick test_fanout_counts;
          Alcotest.test_case "topo order" `Quick test_topo_order;
          Alcotest.test_case "levelize" `Quick test_levelize;
          Alcotest.test_case "is_balanced" `Quick test_is_balanced_detects;
          Alcotest.test_case "validate" `Quick test_validate_ok;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "set_kind io protected" `Quick test_set_kind_io_protected;
          Alcotest.test_case "to_dot" `Quick test_to_dot_nonempty;
        ] );
      ( "truth",
        [
          Alcotest.test_case "vars" `Quick test_truth_vars;
          Alcotest.test_case "ops" `Quick test_truth_ops;
          Alcotest.test_case "of_fun" `Quick test_truth_of_fun;
          Alcotest.test_case "support" `Quick test_truth_support;
          Alcotest.test_case "not involution" `Quick test_truth_not_involution;
          Alcotest.test_case "to_string" `Quick test_truth_to_string;
        ] );
      ( "sim",
        [
          Alcotest.test_case "sample" `Quick test_eval_sample;
          Alcotest.test_case "all kinds" `Quick test_eval_all_kinds;
          Alcotest.test_case "equivalence" `Quick test_equivalent_positive_negative;
          Alcotest.test_case "signature deterministic" `Quick test_signature_deterministic;
          QCheck_alcotest.to_alcotest prop_sim_word_matches_scalar;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "change compression" `Quick test_vcd_change_compression;
          Alcotest.test_case "internal signals" `Quick test_vcd_internal_signals;
          Alcotest.test_case "arity" `Quick test_vcd_rejects_bad_arity;
        ] );
      ( "stats",
        [
          Alcotest.test_case "sample" `Quick test_stats_sample;
          Alcotest.test_case "aqfp profile" `Quick test_stats_balanced_aqfp_has_low_variance_info;
        ] );
      ( "fault",
        [
          Alcotest.test_case "detects basic" `Quick test_fault_detects_basic;
          Alcotest.test_case "fault universe" `Quick test_fault_universe;
          Alcotest.test_case "generation coverage" `Quick test_fault_generation_high_coverage;
          Alcotest.test_case "redundant logic" `Quick test_fault_redundant_logic;
          Alcotest.test_case "compact vectors" `Quick test_fault_vectors_compact;
          Alcotest.test_case "diagnosis" `Quick test_fault_diagnosis;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "basic ops" `Quick test_bdd_basic_ops;
          Alcotest.test_case "canonical maj" `Quick test_bdd_canonical_maj;
          Alcotest.test_case "eval matches sim" `Quick test_bdd_eval_matches_sim;
          Alcotest.test_case "equivalence" `Quick test_bdd_equivalence_positive;
          Alcotest.test_case "counterexample" `Quick test_bdd_counterexample;
          Alcotest.test_case "node limit" `Quick test_bdd_limit;
          QCheck_alcotest.to_alcotest prop_bdd_agrees_with_sim;
        ] );
      ( "bench",
        [
          Alcotest.test_case "parse" `Quick test_bench_parse;
          Alcotest.test_case "nary decomposition" `Quick test_bench_nary_decomposition;
          Alcotest.test_case "use before def" `Quick test_bench_use_before_def;
          Alcotest.test_case "errors" `Quick test_bench_errors;
          Alcotest.test_case "error line numbers" `Quick
            test_bench_error_line_numbers;
          Alcotest.test_case "cycle" `Quick test_bench_cycle_detected;
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip;
        ] );
    ]
