(* The multicore layer's contract: a run with [jobs = N] is
   bit-identical to a run with [jobs = 1], for the primitives and for
   the whole flow. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* run [f] under an explicit jobs setting, restoring auto afterwards *)
let with_jobs n f =
  Parallel.set_jobs n;
  Fun.protect ~finally:Parallel.auto_jobs f

let bits = Int64.bits_of_float

let check_bits name a b =
  Alcotest.(check int64) name (bits a) (bits b)

(* ---- primitives vs their serial counterparts ---- *)

let test_map_matches_serial () =
  let rng = Rng.create 11 in
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> Rng.float rng 100.0 -. 50.0) in
      let f x = (x *. 1.7) +. sin x in
      let serial = Array.map f a in
      List.iter
        (fun jobs ->
          let par = with_jobs jobs (fun () -> Parallel.parallel_map ~chunk:7 f a) in
          checki (Printf.sprintf "n=%d jobs=%d length" n jobs)
            (Array.length serial) (Array.length par);
          Array.iteri
            (fun i x -> check_bits (Printf.sprintf "n=%d jobs=%d [%d]" n jobs i) x par.(i))
            serial)
        [ 1; 2; 4 ])
    [ 0; 1; 6; 7; 8; 100; 1000 ]

let test_init_matches_serial () =
  List.iter
    (fun n ->
      let f i = sqrt (float_of_int i) *. 3.1 in
      let serial = Array.init n f in
      let par = with_jobs 4 (fun () -> Parallel.parallel_init ~chunk:13 n f) in
      Array.iteri (fun i x -> check_bits (Printf.sprintf "init[%d]" i) x par.(i)) serial)
    [ 0; 1; 13; 14; 500 ]

let test_reduce_matches_serial () =
  let rng = Rng.create 23 in
  let a = Array.init 777 (fun _ -> Rng.float rng 2.0 -. 1.0) in
  let map x = x *. x in
  let combine = ( +. ) in
  (* the reference is the same chunked left-to-right grouping at
     jobs=1; determinism means every pool size reproduces it *)
  let reference =
    with_jobs 1 (fun () -> Parallel.parallel_reduce ~chunk:64 ~map ~combine ~init:0.0 a)
  in
  List.iter
    (fun jobs ->
      let v =
        with_jobs jobs (fun () ->
            Parallel.parallel_reduce ~chunk:64 ~map ~combine ~init:0.0 a)
      in
      check_bits (Printf.sprintf "reduce jobs=%d" jobs) reference v)
    [ 2; 3; 4; 8 ]

let test_iter_disjoint_writes () =
  let n = 1000 in
  let src = Array.init n (fun i -> i) in
  let out = Array.make n 0 in
  with_jobs 4 (fun () ->
      Parallel.parallel_iter ~chunk:17 (fun i -> out.(i) <- i * i) src);
  Array.iteri (fun i v -> checki (Printf.sprintf "iter[%d]" i) (i * i) v) out

let test_exception_is_leftmost () =
  let exception Boom of int in
  let raised =
    try
      with_jobs 4 (fun () ->
          ignore
            (Parallel.parallel_map ~chunk:10
               (fun i -> if i mod 31 = 30 then raise (Boom i) else i)
               (Array.init 500 (fun i -> i))));
      None
    with Boom i -> Some i
  in
  (* 30 is the first failing element; its chunk fails first in chunk
     order regardless of which domain hit an error first *)
  Alcotest.(check (option int)) "leftmost exception" (Some 30) raised

let test_jobs_resolution () =
  with_jobs 3 (fun () -> checki "set_jobs wins" 3 (Parallel.jobs ()));
  checki "clamped below" 1 (with_jobs 0 (fun () -> Parallel.jobs ()));
  checki "clamped above" 64 (with_jobs 1000 (fun () -> Parallel.jobs ()))

let test_invalid_sf_jobs_falls_back () =
  (* a malformed SF_JOBS must warn (once, on stderr) and fall back to
     the domain count instead of raising or silently misbehaving *)
  Unix.putenv "SF_JOBS" "eight";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SF_JOBS" "")
    (fun () ->
      let j = Parallel.jobs () in
      checkb "fell back to a sane pool size" true (j >= 1 && j <= 64));
  Unix.putenv "SF_JOBS" "3";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SF_JOBS" "")
    (fun () -> checki "valid SF_JOBS honored" 3 (Parallel.jobs ()))

let test_chunk_validation () =
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  checkb "chunk=0 raises" true
    (raises (fun () -> Parallel.map_chunks ~chunk:0 ~n:10 (fun _ _ -> ())));
  checkb "chunk=-3 raises" true
    (raises (fun () -> Parallel.map_chunks ~chunk:(-3) ~n:10 (fun _ _ -> ())));
  checkb "chunk=0 raises even at n=0" true
    (raises (fun () -> Parallel.map_chunks ~chunk:0 ~n:0 (fun _ _ -> ())));
  (* n = 0: empty result, the chunk function is never called *)
  let called = ref false in
  let r =
    Parallel.map_chunks ~chunk:4 ~n:0 (fun _ _ -> called := true)
  in
  checki "n=0 yields no chunks" 0 (Array.length r);
  checkb "n=0 never calls f" false !called;
  checki "n=0 default chunk" 0
    (Array.length (Parallel.map_chunks ~n:0 (fun _ _ -> ())))

(* grouping stability: with an associative combine, the reduce result
   is the same whatever chunk size sliced the array *)
let reduce_grouping_stable =
  QCheck.Test.make ~count:100 ~name:"reduce grouping-stable across chunk sizes"
    QCheck.(pair (list small_int) (int_range 1 50))
    (fun (l, chunk) ->
      let a = Array.of_list l in
      let serial = Array.fold_left ( + ) 0 a in
      let v =
        with_jobs 4 (fun () ->
            Parallel.parallel_reduce ~chunk ~map:Fun.id ~combine:( + ) ~init:0 a)
      in
      v = serial)

(* ---- whole flow: jobs=1 vs jobs=4, byte-identical GDS ---- *)

let read_bytes path = In_channel.with_open_bin path In_channel.input_all

let flow_fingerprint name jobs =
  let gds = Filename.temp_file "superflow_par" ".gds" in
  let r = Flow.run ~jobs ~gds_path:gds (Circuits.benchmark name) in
  let bytes = read_bytes gds in
  Sys.remove gds;
  ( Problem.hpwl r.Flow.problem,
    r.Flow.routing.Router.wirelength,
    r.Flow.routing.Router.total_vias,
    r.Flow.routing.Router.expansions,
    r.Flow.sta.Sta.wns_ps,
    bytes )

let check_flow_deterministic name =
  let h1, wl1, v1, e1, wns1, gds1 = flow_fingerprint name 1 in
  let h4, wl4, v4, e4, wns4, gds4 = flow_fingerprint name 4 in
  Parallel.auto_jobs ();
  check_bits "hpwl" h1 h4;
  check_bits "routed wirelength" wl1 wl4;
  checki "vias" v1 v4;
  checki "expansions" e1 e4;
  check_bits "wns" wns1 wns4;
  checkb "gds byte-identical" true (String.equal gds1 gds4)

let test_flow_adder8 () = check_flow_deterministic "adder8"
let test_flow_apc32 () = check_flow_deterministic "apc32"

let () =
  Alcotest.run "parallel"
    [
      ( "primitives",
        [
          Alcotest.test_case "map = serial map" `Quick test_map_matches_serial;
          Alcotest.test_case "init = serial init" `Quick test_init_matches_serial;
          Alcotest.test_case "reduce identical across pool sizes" `Quick
            test_reduce_matches_serial;
          Alcotest.test_case "iter with disjoint writes" `Quick
            test_iter_disjoint_writes;
          Alcotest.test_case "leftmost exception wins" `Quick
            test_exception_is_leftmost;
          Alcotest.test_case "jobs resolution and clamping" `Quick
            test_jobs_resolution;
          Alcotest.test_case "invalid SF_JOBS falls back loudly" `Quick
            test_invalid_sf_jobs_falls_back;
          Alcotest.test_case "chunk validation and n=0" `Quick
            test_chunk_validation;
          QCheck_alcotest.to_alcotest reduce_grouping_stable;
        ] );
      ( "full flow",
        [
          Alcotest.test_case "adder8: jobs=1 = jobs=4 (GDS bytes)" `Quick
            test_flow_adder8;
          Alcotest.test_case "apc32: jobs=1 = jobs=4 (GDS bytes)" `Slow
            test_flow_apc32;
        ] );
    ]
