(* Tests for the sf_resyn cut-based majority resynthesis engine:
   every resynthesized design must prove equivalent to its input
   (bundled benchmarks and random profile-matched netlists alike) and
   never worsen JJ count or phase depth; the engine must be
   idempotent (a second run accepts zero rewrites and returns its
   input byte-for-byte) and deterministic across worker-pool sizes;
   and Opt.optimize must refuse post-mapping netlists with a message
   that redirects to this engine. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let resyn ?(effort = Resyn.Full) aoi =
  let aqfp0 = Synth_flow.run_quiet aoi in
  let aqfp1, r = Resyn.run ~effort aqfp0 in
  (aqfp0, aqfp1, r)

let assert_equal_and_no_worse name aoi =
  let aqfp0, aqfp1, r = resyn aoi in
  (match Cec.check aqfp0 aqfp1 with
  | Cec.Equal -> ()
  | Cec.Diff _ -> Alcotest.failf "%s: resyn changed the function" name
  | Cec.Unknown _ -> Alcotest.failf "%s: resyn equivalence unknown" name);
  checkb (name ^ " jj no worse") true (r.Resyn.jj_after <= r.Resyn.jj_before);
  checkb
    (name ^ " depth no worse")
    true
    (r.Resyn.depth_after <= r.Resyn.depth_before);
  (* metrics in the report describe the returned netlist *)
  checki (name ^ " jj_after") r.Resyn.jj_after (Cell.netlist_jj_count aqfp1);
  (* every window is accounted for: proven fresh, served from a cache,
     or refused ([failed] also counts cached/memoized refutations, so
     it bounds the gap rather than closing an exact sum) *)
  let served =
    r.Resyn.cec.Resyn.proved + r.Resyn.cec.Resyn.cached
    + r.Resyn.cec.Resyn.memoized
  in
  checkb (name ^ " cec served bound") true (served <= r.Resyn.cec.Resyn.windows);
  checkb
    (name ^ " cec refusals bound")
    true
    (r.Resyn.cec.Resyn.windows <= served + r.Resyn.cec.Resyn.failed)

let test_bundled_designs () =
  List.iter
    (fun name -> assert_equal_and_no_worse name (Circuits.benchmark name))
    Circuits.benchmark_names

let test_random_netlists () =
  (* 30 random profile-matched netlists in the c-series shape *)
  for seed = 1 to 30 do
    let aoi =
      Circuits.iscas_like ~seed ~pi:8 ~po:4
        ~gates:(20 + (7 * seed mod 40))
        ~depth:(4 + (seed mod 5))
    in
    assert_equal_and_no_worse (Printf.sprintf "iscas_like seed %d" seed) aoi
  done

let test_improves_bundled () =
  (* the acceptance bar: full effort strictly improves JJ count or
     phase depth on at least half the bundled designs *)
  let improved =
    List.length
      (List.filter
         (fun name ->
           let _, _, r = resyn (Circuits.benchmark name) in
           r.Resyn.jj_after < r.Resyn.jj_before
           || r.Resyn.depth_after < r.Resyn.depth_before)
         Circuits.benchmark_names)
  in
  let total = List.length Circuits.benchmark_names in
  checkb
    (Printf.sprintf "%d/%d designs improved" improved total)
    true
    (2 * improved >= total)

let test_idempotent () =
  List.iter
    (fun name ->
      let _, aqfp1, _ = resyn (Circuits.benchmark name) in
      let aqfp2, r2 = Resyn.run ~effort:Resyn.Full aqfp1 in
      checki (name ^ " second run accepts 0") 0 (Resyn.rewrites_accepted r2);
      checks (name ^ " fixpoint is stable")
        (Netlist.struct_hash aqfp1)
        (Netlist.struct_hash aqfp2);
      (* when nothing improves, the very same netlist comes back *)
      checkb (name ^ " physically unchanged") true (aqfp1 == aqfp2))
    [ "adder8"; "apc32"; "c432" ]

let test_jobs_independent () =
  let run jobs =
    Parallel.set_jobs jobs;
    let _, aqfp1, _ = resyn (Circuits.benchmark "apc32") in
    Netlist.struct_hash aqfp1
  in
  let h1 = run 1 in
  let h4 = run 4 in
  Parallel.set_jobs 1;
  checks "jobs=1 = jobs=4" h1 h4

let test_effort_off_is_identity () =
  let aqfp0 = Synth_flow.run_quiet (Circuits.benchmark "adder8") in
  let aqfp1, r = Resyn.run aqfp0 in
  checkb "same netlist" true (aqfp0 == aqfp1);
  checki "no rounds" 0 r.Resyn.rounds;
  checki "no windows" 0 r.Resyn.cec.Resyn.windows

let test_cache_warm_reproves_nothing () =
  let tbl = Hashtbl.create 64 in
  let cache =
    {
      Resyn.find = (fun k -> Hashtbl.find_opt tbl k);
      store = (fun k v -> Hashtbl.replace tbl k v);
    }
  in
  let aqfp0 = Synth_flow.run_quiet (Circuits.benchmark "apc32") in
  let a1, r1 = Resyn.run ~effort:Resyn.Full ~cache aqfp0 in
  let a2, r2 = Resyn.run ~effort:Resyn.Full ~cache aqfp0 in
  checkb "cold run proves" true (r1.Resyn.cec.Resyn.proved > 0);
  checki "warm run proves nothing" 0 r2.Resyn.cec.Resyn.proved;
  checks "warm result identical" (Netlist.struct_hash a1)
    (Netlist.struct_hash a2)

(* ---------- NPN canonicalization ---------- *)

let test_npn_classes () =
  checki "3-input NPN classes" 14 (Npn.classes ())

let test_npn_uncanon_semantics () =
  (* uncanon must transport the canonical class representative's
     implementation back so that it computes the original function;
     checked via Maj_db over every 3-input truth table *)
  for f = 0 to 255 do
    let g, t = Npn.canon f in
    let impl' = Npn.uncanon t (Maj_db.lookup g) in
    for v = 0 to 7 do
      let x = [| v land 1 = 1; v land 2 <> 0; v land 4 <> 0 |] in
      checkb
        (Printf.sprintf "tt %d vector %d" f v)
        (Truth.eval f x) (Maj_db.eval_impl impl' x)
    done
  done

(* ---------- struct_hash commutative canonicalization ---------- *)

let test_struct_hash_commutative () =
  let mk order =
    let nl = Netlist.create () in
    let a = Netlist.add nl Netlist.Input [||] in
    let b = Netlist.add nl Netlist.Input [||] in
    let c = Netlist.add nl Netlist.Input [||] in
    let perm = Array.map (fun i -> [| a; b; c |].(i)) order in
    let m = Netlist.add nl Netlist.Maj perm in
    ignore (Netlist.add nl Netlist.Output [| m |]);
    Netlist.struct_hash nl
  in
  checks "maj(a,b,c) = maj(c,a,b)" (mk [| 0; 1; 2 |]) (mk [| 2; 0; 1 |]);
  checks "maj(a,b,c) = maj(b,c,a)" (mk [| 0; 1; 2 |]) (mk [| 1; 2; 0 |])

(* ---------- Opt precondition ---------- *)

let test_opt_rejects_mapped_netlists () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let c = Netlist.add nl Netlist.Input [||] in
  let m = Netlist.add nl Netlist.Maj [| a; b; c |] in
  ignore (Netlist.add nl Netlist.Output [| m |]);
  match Opt.optimize nl with
  | _ -> Alcotest.fail "Opt.optimize accepted a majority netlist"
  | exception Invalid_argument msg ->
      checkb "names the node kind" true (contains msg "maj");
      checkb "redirects to sf_resyn" true (contains msg "sf_resyn")

let () =
  Alcotest.run "resyn"
    [
      ( "equivalence",
        [
          Alcotest.test_case "bundled designs" `Quick test_bundled_designs;
          Alcotest.test_case "random netlists" `Slow test_random_netlists;
        ] );
      ( "qor",
        [
          Alcotest.test_case "improves half the designs" `Quick
            test_improves_bundled;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "idempotent" `Quick test_idempotent;
          Alcotest.test_case "effort off is identity" `Quick
            test_effort_off_is_identity;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 4" `Quick test_jobs_independent;
          Alcotest.test_case "warm cache" `Quick
            test_cache_warm_reproves_nothing;
        ] );
      ( "npn",
        [
          Alcotest.test_case "class count" `Quick test_npn_classes;
          Alcotest.test_case "uncanon semantics" `Quick
            test_npn_uncanon_semantics;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "commutative struct_hash" `Quick
            test_struct_hash_commutative;
        ] );
      ( "opt",
        [
          Alcotest.test_case "rejects mapped netlists" `Quick
            test_opt_rejects_mapped_netlists;
        ] );
    ]
