(* Tests for the layer-wise A* router: path validity, exclusivity,
   space expansion, and the routed-design invariants. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let placed_problem name alg =
  let aoi = Circuits.benchmark name in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place alg p);
  p

let tiny_placed () =
  let aoi = Circuits.kogge_stone_adder 2 in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  p

let test_routes_all_nets () =
  let p = tiny_placed () in
  let r = Router.route_all p in
  checki "one route per net" (Array.length p.Problem.nets) (Array.length r.Router.routes);
  Array.iteri
    (fun i rt -> checki "net order" i rt.Router.net)
    r.Router.routes

let test_route_check_clean () =
  let p = tiny_placed () in
  let r = Router.route_all p in
  match Router.check_routes p r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_routes_connect_pins () =
  let p = tiny_placed () in
  let r = Router.route_all p in
  Array.iter
    (fun rt ->
      match (rt.Router.points, List.rev rt.Router.points) with
      | (x0, _) :: _, (xn, yn) :: _ ->
          let e = p.Problem.nets.(rt.Router.net) in
          Alcotest.(check (float 1e-6)) "start x" (Problem.pin_x p rt.Router.net `Src) x0;
          Alcotest.(check (float 1e-6)) "end x" (Problem.pin_x p rt.Router.net `Dst) xn;
          let dc = p.Problem.cells.(e.Problem.dst) in
          Alcotest.(check (float 1e-6)) "end y"
            (Problem.row_top p dc.Problem.row) yn
      | _ -> Alcotest.fail "empty route")
    r.Router.routes

let test_rectilinear_on_grid () =
  let p = tiny_placed () in
  let r = Router.route_all p in
  let grid = Tech.default.Tech.grid in
  Array.iter
    (fun rt ->
      let rec walk = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
            checkb "rectilinear" true (x1 = x2 || y1 = y2);
            checkb "x on grid" true (Float.rem x1 grid < 1e-6);
            checkb "y on grid" true (Float.rem y1 grid < 1e-6);
            walk rest
        | _ -> ()
      in
      walk rt.Router.points)
    r.Router.routes

let test_wirelength_consistent () =
  let p = tiny_placed () in
  let r = Router.route_all p in
  let sum =
    Array.fold_left
      (fun acc rt ->
        let rec len = function
          | (x1, y1) :: ((x2, y2) :: _ as rest) ->
              Float.abs (x2 -. x1) +. Float.abs (y2 -. y1) +. len rest
          | _ -> 0.0
        in
        acc +. len rt.Router.points)
      0.0 r.Router.routes
  in
  Alcotest.(check (float 1e-3)) "sum of segments" sum r.Router.wirelength;
  (* every route is at least as long as its net's Manhattan distance *)
  Array.iter
    (fun rt ->
      let e = p.Problem.nets.(rt.Router.net) in
      let lower = Problem.net_length p e in
      checkb "no shorter than manhattan" true (rt.Router.length +. 1e-6 >= lower))
    r.Router.routes

let test_expansion_monotone_gaps () =
  let p = placed_problem "adder8" Placer.Superflow in
  let before = Array.copy p.Problem.row_gaps in
  let r = Router.route_all p in
  checkb "expansions recorded" true (r.Router.expansions >= 0);
  Array.iteri
    (fun i g -> checkb "gaps only grow" true (g >= before.(i) -. 1e-9))
    p.Problem.row_gaps

let test_larger_benchmarks_route () =
  List.iter
    (fun name ->
      let p = placed_problem name Placer.Superflow in
      let r = Router.route_all p in
      (match Router.check_routes p r with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e));
      checkb (name ^ " wl sane") true (r.Router.wirelength > 0.0))
    [ "apc32"; "decoder" ]

let test_gordian_placement_routes_too () =
  let p = placed_problem "adder8" Placer.Gordian in
  let r = Router.route_all p in
  match Router.check_routes p r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_negotiated_mode () =
  let p = tiny_placed () in
  let r = Router.route_all ~algorithm:Router.Negotiated p in
  (match Router.check_routes p r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  checki "one route per net" (Array.length p.Problem.nets) (Array.length r.Router.routes)

let test_negotiated_not_worse () =
  (* negotiation should never need more space than sequential claiming *)
  let route alg =
    let p = placed_problem "adder8" Placer.Superflow in
    let r = Router.route_all ~algorithm:alg p in
    (match Router.check_routes p r with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    r.Router.expansions
  in
  checkb "fewer or equal expansions" true
    (route Router.Negotiated <= route Router.Sequential)

(* ---------- congestion estimation ---------- *)

let test_congestion_density_manual () =
  (* two nets with overlapping spans in one gap -> density 2 *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let x = Netlist.add nl Netlist.Buf [| a |] in
  let y = Netlist.add nl Netlist.Buf [| b |] in
  ignore (Netlist.add nl Netlist.Output [| x |]);
  ignore (Netlist.add nl Netlist.Output [| y |]);
  ignore (Netlist.levelize nl);
  let p = Problem.of_netlist Tech.default nl in
  (* force the two gap-0 nets to cross: a at 0 -> x at far right, and
     b at far right -> y at 0 *)
  let cell_of node =
    let idx = ref (-1) in
    Array.iteri (fun i c -> if c.Problem.node = node then idx := i) p.Problem.cells;
    p.Problem.cells.(!idx)
  in
  (cell_of a).Problem.x <- 0.0;
  (cell_of b).Problem.x <- 500.0;
  (cell_of x).Problem.x <- 500.0;
  (cell_of y).Problem.x <- 0.0;
  checki "crossing nets overlap" 2 (Congestion.channel_density p 0);
  (* parallel (non-overlapping) spans -> density 1 *)
  (cell_of x).Problem.x <- 0.0;
  (cell_of y).Problem.x <- 500.0;
  checki "parallel nets" 1 (Congestion.channel_density p 0)

let test_congestion_preexpand_reduces_expansions () =
  let route_with_preexpand pre =
    let p = placed_problem "apc32" Placer.Superflow in
    if pre then ignore (Congestion.preexpand p);
    let r = Router.route_all p in
    r.Router.expansions
  in
  checkb "preexpansion saves router work" true
    (route_with_preexpand true <= route_with_preexpand false)

let test_congestion_report_renders () =
  let p = placed_problem "adder8" Placer.Superflow in
  let text = Congestion.report p in
  checkb "has rows" true (String.length text > 100)

let prop_routes_edge_disjoint =
  (* check_routes validates edge-disjointness; also verify net ids and
     via counts are consistent across random placement seeds *)
  QCheck.Test.make ~name:"routing is valid across placement seeds" ~count:5
    QCheck.(int_bound 1000)
    (fun seed ->
      let aoi = Circuits.kogge_stone_adder 2 in
      let aqfp = Synth_flow.run_quiet aoi in
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place ~seed Placer.Superflow p);
      let r = Router.route_all p in
      Router.check_routes p r = Ok ()
      && r.Router.total_vias
         = Array.fold_left (fun acc rt -> acc + rt.Router.vias) 0 r.Router.routes)

(* Everything that must be deterministic about a routing result —
   excludes runtime_s. *)
let fingerprint r =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( r.Router.routes, r.Router.expansions, r.Router.node_expansions,
            r.Router.neg_rounds, r.Router.neg_rerouted, r.Router.wirelength,
            r.Router.total_vias )
          []))

let prop_cores_valid_and_jobs_invariant =
  (* over random placement seeds: both algorithms × both search cores
     produce check_routes-clean results, and the fast core is
     byte-identical at jobs=1 and jobs=4 (pair-local search state plus
     a fixed merge order make worker count unobservable) *)
  QCheck.Test.make
    ~name:"cores valid across seeds; fast core jobs-invariant" ~count:4
    QCheck.(int_bound 1000)
    (fun seed ->
      let placed () =
        let aoi = Circuits.kogge_stone_adder 2 in
        let aqfp = Synth_flow.run_quiet aoi in
        let p = Problem.of_netlist Tech.default aqfp in
        ignore (Placer.place ~seed Placer.Superflow p);
        p
      in
      let route jobs alg core =
        Parallel.set_jobs jobs;
        Fun.protect ~finally:Parallel.auto_jobs (fun () ->
            let p = placed () in
            let r = Router.route_all ~algorithm:alg ~core p in
            (Router.check_routes p r = Ok (), fingerprint r))
      in
      List.for_all
        (fun alg ->
          List.for_all
            (fun core -> fst (route 1 alg core))
            [ Router.Fast; Router.Legacy ]
          &&
          let ok1, f1 = route 1 alg Router.Fast in
          let ok4, f4 = route 4 alg Router.Fast in
          ok1 && ok4 && f1 = f4)
        [ Router.Sequential; Router.Negotiated ])

let test_fast_matches_legacy_sequential () =
  (* the fast core is a pure reimplementation of the same search: with
     the sequential algorithm its QoR must match the legacy core
     exactly on a real benchmark, not just within tolerance *)
  let route core =
    let p = placed_problem "adder8" Placer.Superflow in
    Router.route_all ~core p
  in
  let f = route Router.Fast in
  let l = route Router.Legacy in
  Alcotest.(check (float 1e-6))
    "wirelength" l.Router.wirelength f.Router.wirelength;
  checki "vias" l.Router.total_vias f.Router.total_vias;
  checki "space expansions" l.Router.expansions f.Router.expansions

let () =
  Alcotest.run "sf_route"
    [
      ( "router",
        [
          Alcotest.test_case "routes all nets" `Quick test_routes_all_nets;
          Alcotest.test_case "check clean" `Quick test_route_check_clean;
          Alcotest.test_case "connects pins" `Quick test_routes_connect_pins;
          Alcotest.test_case "rectilinear on grid" `Quick test_rectilinear_on_grid;
          Alcotest.test_case "wirelength consistent" `Quick test_wirelength_consistent;
          Alcotest.test_case "expansion" `Slow test_expansion_monotone_gaps;
          Alcotest.test_case "larger benchmarks" `Slow test_larger_benchmarks_route;
          Alcotest.test_case "gordian placement" `Slow test_gordian_placement_routes_too;
          Alcotest.test_case "negotiated mode" `Quick test_negotiated_mode;
          Alcotest.test_case "negotiated expansions" `Slow test_negotiated_not_worse;
          Alcotest.test_case "congestion density" `Quick test_congestion_density_manual;
          Alcotest.test_case "preexpand" `Slow test_congestion_preexpand_reduces_expansions;
          Alcotest.test_case "congestion report" `Quick test_congestion_report_renders;
          QCheck_alcotest.to_alcotest prop_routes_edge_disjoint;
          Alcotest.test_case "fast = legacy (sequential)" `Quick
            test_fast_matches_legacy_sequential;
          QCheck_alcotest.to_alcotest prop_cores_valid_and_jobs_invariant;
        ] );
    ]
