(* Tests for the sf_sat subsystem: the CDCL solver must agree with
   brute-force enumeration and return valid models, DIMACS must
   round-trip, and the CEC sweeper must prove unmutated benchmark
   pairs equal while producing replayable counterexamples for seeded
   mutations. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- indexed heap ---------- *)

let test_iheap () =
  let act = [| 1.0; 5.0; 3.0; 5.0; 0.0 |] in
  let h =
    Iheap.create ~better:(fun a b ->
        act.(a) > act.(b) || (act.(a) = act.(b) && a < b))
  in
  List.iter (Iheap.insert h) [ 0; 1; 2; 3; 4 ];
  Iheap.insert h 1;
  checki "no duplicate insert" 5 (Iheap.length h);
  checkb "mem" true (Iheap.mem h 3);
  (* equal activities pop in index order: 1 before 3 *)
  let order = List.init 5 (fun _ -> Option.get (Iheap.pop h)) in
  checkb "pop order deterministic" true (order = [ 1; 3; 2; 0; 4 ]);
  checkb "empty" true (Iheap.is_empty h);
  Iheap.insert h 2;
  act.(4) <- 9.0;
  Iheap.insert h 4;
  Iheap.update h 2;
  checkb "best after update" true (Iheap.pop h = Some 4)

(* ---------- solver vs brute force ---------- *)

let eval_cnf cnf assignment =
  List.for_all
    (fun cl ->
      List.exists
        (fun d ->
          let v = assignment.(abs d - 1) in
          if d < 0 then not v else v)
        cl)
    cnf.Dimacs.clauses

let brute_force_sat cnf =
  let n = cnf.Dimacs.n_vars in
  let found = ref false in
  let m = 1 lsl n in
  let i = ref 0 in
  while (not !found) && !i < m do
    let a = Array.init n (fun k -> (!i lsr k) land 1 = 1) in
    if eval_cnf cnf a then found := true;
    incr i
  done;
  !found

let random_cnf rng =
  let n = 3 + Rng.int rng 10 in
  (* around the sat/unsat threshold so both answers occur *)
  let m = max 1 (n * (3 + Rng.int rng 3)) in
  let clauses =
    List.init m (fun _ ->
        let len = 2 + Rng.int rng 3 in
        List.init len (fun _ ->
            let v = 1 + Rng.int rng n in
            if Rng.bool rng then v else -v))
  in
  { Dimacs.n_vars = n; clauses }

let test_cdcl_vs_brute_force () =
  let rng = Rng.create 42 in
  let sat_seen = ref 0 and unsat_seen = ref 0 in
  for _ = 1 to 150 do
    let cnf = random_cnf rng in
    let expect = brute_force_sat cnf in
    (match Dimacs.solve cnf with
    | `Sat model ->
      incr sat_seen;
      checkb "solver sat iff brute-force sat" true expect;
      checkb "model satisfies the formula" true (eval_cnf cnf model)
    | `Unsat ->
      incr unsat_seen;
      checkb "solver unsat iff brute-force unsat" false expect
    | `Unknown -> Alcotest.fail "unbudgeted solve returned Unknown")
  done;
  checkb "exercised both answers" true (!sat_seen > 10 && !unsat_seen > 10)

let test_solver_determinism () =
  let rng = Rng.create 7 in
  let cnfs = List.init 20 (fun _ -> random_cnf rng) in
  let run () =
    List.map
      (fun cnf ->
        match Dimacs.solve cnf with
        | `Sat m -> "s" ^ String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list m))
        | `Unsat -> "u"
        | `Unknown -> "?")
      cnfs
  in
  checkb "identical reruns" true (run () = run ())

(* ---------- assumptions, incrementality, budget ---------- *)

let test_assumptions_incremental () =
  let s = Solver.create () in
  let x = Solver.lit_of_var (Solver.new_var s) in
  let y = Solver.lit_of_var (Solver.new_var s) in
  Solver.add_clause s [ x; y ];
  Solver.add_clause s [ Solver.neg_lit x; y ];
  (* x∨y, ¬x∨y ⊨ y *)
  checkb "y forced" true
    (Solver.solve ~assumptions:[ Solver.neg_lit y ] s = Solver.Unsat);
  checkb "still sat without assumptions" true (Solver.solve s = Solver.Sat);
  checkb "model has y" true (Solver.model_value s y);
  (* the assumption-unsat above must not have poisoned the solver *)
  checkb "okay" true (Solver.okay s);
  Solver.add_clause s [ Solver.neg_lit y ];
  checkb "now truly unsat" true (Solver.solve s = Solver.Unsat);
  checkb "not okay" false (Solver.okay s)

(* Pigeonhole PHP(n+1, n): classic hard UNSAT family. *)
let pigeonhole s n =
  let v = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Solver.new_var s)) in
  for i = 0 to n do
    Solver.add_clause s
      (List.init n (fun j -> Solver.lit_of_var v.(i).(j)))
  done;
  for j = 0 to n - 1 do
    for i = 0 to n do
      for k = i + 1 to n do
        Solver.add_clause s
          [
            Solver.neg_lit (Solver.lit_of_var v.(i).(j));
            Solver.neg_lit (Solver.lit_of_var v.(k).(j));
          ]
      done
    done
  done

let test_budget_and_php () =
  let s = Solver.create () in
  pigeonhole s 4;
  checkb "php(5,4) needs conflicts" true
    (Solver.solve ~conflict_budget:1 s = Solver.Unknown);
  (* learnt clauses survive; resumed solve finishes the proof *)
  checkb "php(5,4) unsat" true (Solver.solve s = Solver.Unsat);
  let s2 = Solver.create () in
  pigeonhole s2 6;
  checkb "php(7,6) unsat (restarts + reduction exercised)" true
    (Solver.solve s2 = Solver.Unsat);
  checkb "nontrivial conflict count" true (Solver.conflicts s2 > 50)

(* ---------- DIMACS ---------- *)

let test_dimacs_roundtrip () =
  let text = "c a comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n" in
  match Dimacs.parse text with
  | Error e -> Alcotest.fail e
  | Ok cnf ->
    checki "vars" 3 cnf.Dimacs.n_vars;
    checki "clauses" 3 (List.length cnf.Dimacs.clauses);
    (match Dimacs.parse (Dimacs.to_string cnf) with
    | Error e -> Alcotest.fail e
    | Ok cnf' ->
      checkb "round-trip" true (cnf = cnf');
      (match Dimacs.solve cnf' with
      | `Sat m ->
        checkb "¬x1 forced" false m.(0);
        checkb "model valid" true (eval_cnf cnf' m)
      | `Unsat | `Unknown -> Alcotest.fail "expected sat"));
    checkb "missing header rejected" true
      (match Dimacs.parse "1 2 0\n" with Error _ -> true | Ok _ -> false);
    checkb "junk rejected" true
      (match Dimacs.parse "p cnf 2 1\n1 x 0\n" with
      | Error _ -> true
      | Ok _ -> false)

(* ---------- AIG ---------- *)

let test_aig_strash () =
  let g = Aig.create ~n_inputs:3 in
  let a = Aig.input_lit g 0 and b = Aig.input_lit g 1 in
  let x1 = Aig.mk_and g a b in
  let x2 = Aig.mk_and g b a in
  checkb "commutative strash" true (x1 = x2);
  checkb "const fold" true (Aig.mk_and g a Aig.false_lit = Aig.false_lit);
  checkb "identity" true (Aig.mk_and g a Aig.true_lit = a);
  checkb "idempotent" true (Aig.mk_and g a a = a);
  checkb "contradiction" true (Aig.mk_and g a (Aig.neg a) = Aig.false_lit);
  let n = Aig.n_nodes g in
  ignore (Aig.mk_and g a b);
  checki "hash hit allocates nothing" n (Aig.n_nodes g);
  (* xor truth table via sim *)
  let x = Aig.mk_xor g a b in
  let vals = Aig.sim g [| 0b1010L; 0b1100L; 0L |] in
  checkb "xor sim" true
    (Int64.logand (Aig.lit_word vals x) 0b1111L = 0b0110L);
  let mj = Aig.mk_maj g a b (Aig.input_lit g 2) in
  let vals = Aig.sim g [| 0b10101010L; 0b11001100L; 0b11110000L |] in
  checkb "maj sim" true
    (Int64.logand (Aig.lit_word vals mj) 0xffL = 0b11101000L)

(* ---------- CEC ---------- *)

let xor3 assoc_left =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let c = Netlist.add nl Netlist.Input [||] in
  let o =
    if assoc_left then
      Netlist.add nl Netlist.Xor [| Netlist.add nl Netlist.Xor [| a; b |]; c |]
    else
      Netlist.add nl Netlist.Xor [| a; Netlist.add nl Netlist.Xor [| b; c |] |]
  in
  ignore (Netlist.add nl Netlist.Output [| o |]);
  nl

let replays a b cex =
  Sim.eval a cex <> Sim.eval b cex

let test_cec_basic () =
  let l = xor3 true and r = xor3 false in
  checkb "xor associativity proven" true (Cec.check l r = Cec.Equal);
  (* a genuinely different pair: xor3 vs maj *)
  let m = Netlist.create () in
  let a = Netlist.add m Netlist.Input [||] in
  let b = Netlist.add m Netlist.Input [||] in
  let c = Netlist.add m Netlist.Input [||] in
  ignore (Netlist.add m Netlist.Output [| Netlist.add m Netlist.Maj [| a; b; c |] |]);
  (match Cec.check l m with
  | Cec.Diff cex -> checkb "cex replays" true (replays l m cex)
  | Cec.Equal | Cec.Unknown _ -> Alcotest.fail "expected Diff");
  (* zero-ish budget on a non-trivial equivalence -> Unknown *)
  match Cec.check ~conflict_budget:0 l r with
  | Cec.Unknown b -> checki "budget echoed" 0 b
  | Cec.Equal -> Alcotest.fail "expected Unknown, got Equal"
  | Cec.Diff _ -> Alcotest.fail "expected Unknown, got Diff"

(* Pin a non-IO node to a constant; CEC must find a replayable cex, or
   prove the fault redundant in agreement with exhaustive/sampled
   simulation. *)
let mutation_targets nl =
  let n = Netlist.size nl in
  let eligible id =
    match Netlist.kind nl id with
    | Netlist.Input | Netlist.Output | Netlist.Const _ -> false
    | _ -> true
  in
  List.filter eligible [ n / 4; n / 2; (3 * n) / 4 ]
  |> List.sort_uniq compare

let test_cec_benchmarks_and_mutations () =
  List.iter
    (fun name ->
      let nl = Circuits.benchmark name in
      checkb
        (name ^ ": unmutated pair proven equal")
        true
        (Cec.check nl (Netlist.copy nl) = Cec.Equal);
      List.iteri
        (fun k id ->
          let m = Netlist.copy nl in
          Netlist.set_kind m id (Netlist.Const (k mod 2 = 0));
          Netlist.set_fanins m id [||];
          match Cec.check nl m with
          | Cec.Diff cex ->
            checkb
              (Printf.sprintf "%s: cex for stuck node %d replays" name id)
              true (replays nl m cex)
          | Cec.Equal ->
            (* redundant fault: simulation must agree *)
            checkb
              (Printf.sprintf "%s: node %d 'equal' is a redundant fault"
                 name id)
              true (Sim.equivalent nl m)
          | Cec.Unknown _ ->
            Alcotest.fail (name ^ ": mutation check exhausted budget"))
        (mutation_targets nl))
    Circuits.benchmark_names

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "iheap" `Quick test_iheap;
          Alcotest.test_case "cdcl vs brute force" `Quick
            test_cdcl_vs_brute_force;
          Alcotest.test_case "determinism" `Quick test_solver_determinism;
          Alcotest.test_case "assumptions + incremental" `Quick
            test_assumptions_incremental;
          Alcotest.test_case "budget + pigeonhole" `Quick test_budget_and_php;
          Alcotest.test_case "dimacs" `Quick test_dimacs_roundtrip;
        ] );
      ( "cec",
        [
          Alcotest.test_case "aig strash + sim" `Quick test_aig_strash;
          Alcotest.test_case "miter basics" `Quick test_cec_basic;
          Alcotest.test_case "benchmarks + mutations" `Slow
            test_cec_benchmarks_and_mutations;
        ] );
    ]
