(* Tests for the sf_util substrate: priority queue, union-find, vector,
   RNG, geometry, stats, tables. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ---------- Pqueue ---------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  checki "length" 3 (Pqueue.length q);
  check Alcotest.(option (pair (float 1e-9) string)) "peek" (Some (1.0, "a")) (Pqueue.peek q);
  let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  check Alcotest.(list string) "pop order" [ "a"; "b"; "c" ] order;
  checkb "empty after" true (Pqueue.is_empty q)

let test_pqueue_duplicates () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 1;
  Pqueue.push q 1.0 2;
  Pqueue.push q 0.5 3;
  checki "first" 3 (snd (Option.get (Pqueue.pop q)));
  let a = snd (Option.get (Pqueue.pop q)) in
  let b = snd (Option.get (Pqueue.pop q)) in
  checkb "both equal-prio values come out" true (List.sort compare [ a; b ] = [ 1; 2 ])

let test_pqueue_clear () =
  let q = Pqueue.create () in
  for i = 1 to 10 do
    Pqueue.push q (float_of_int i) i
  done;
  Pqueue.clear q;
  checkb "cleared" true (Pqueue.is_empty q);
  check Alcotest.(option (pair (float 1e-9) int)) "pop none" None (Pqueue.pop q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue pops in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) prios;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare prios)

(* ---------- Dqueue ---------- *)

let popij = Alcotest.(option (pair int int))

let test_dqueue_basic () =
  let q = Dqueue.create () in
  checkb "empty" true (Dqueue.is_empty q);
  Dqueue.push q 5 50;
  Dqueue.push q 3 30;
  Dqueue.push q 5 51;
  checki "length" 3 (Dqueue.length q);
  check popij "min key first" (Some (3, 30)) (Dqueue.pop q);
  check popij "fifo within key" (Some (5, 50)) (Dqueue.pop q);
  (* a push below the cursor must still come out first *)
  Dqueue.push q 1 10;
  check popij "cursor moves back" (Some (1, 10)) (Dqueue.pop q);
  check popij "rest" (Some (5, 51)) (Dqueue.pop q);
  check popij "drained" None (Dqueue.pop q);
  (* clear with a far key (second page) pending, then reuse *)
  Dqueue.push q 700 7;
  Dqueue.clear q;
  checkb "cleared" true (Dqueue.is_empty q);
  Dqueue.push q 2 20;
  check popij "reusable after clear" (Some (2, 20)) (Dqueue.pop q)

(* The documented contract, checked against an executable model: keys
   pop in non-decreasing order and equal keys pop in push (FIFO)
   order. The model is a stable insertion sort, so any divergence —
   including a nondeterministic tie-break like the binary heap's —
   fails the property. Keys span several 256-bucket pages and pops
   interleave with pushes (exercising cursor moves in both
   directions). *)
let prop_dqueue_matches_model =
  QCheck.Test.make ~name:"dqueue matches stable sorted-FIFO model" ~count:300
    QCheck.(list (pair bool (int_bound 600)))
    (fun ops ->
      let q = Dqueue.create () in
      let model = ref [] in
      let insert k v =
        let rec go = function
          | ((k', _) :: _) as rest when k' > k -> (k, v) :: rest
          | kv :: rest -> kv :: go rest
          | [] -> [ (k, v) ]
        in
        model := go !model
      in
      let counter = ref 0 in
      List.for_all
        (fun (is_push, key) ->
          if is_push then begin
            incr counter;
            Dqueue.push q key !counter;
            insert key !counter;
            Dqueue.length q = List.length !model
          end
          else
            match (Dqueue.pop q, !model) with
            | None, [] -> true
            | Some (k, v), (mk, mv) :: rest ->
                model := rest;
                k = mk && v = mv
            | _ -> false)
        ops
      && List.for_all (fun (mk, mv) -> Dqueue.pop q = Some (mk, mv)) !model
      && Dqueue.pop q = None)

(* Same priority sequence as the float binary heap it replaces, under
   interleaved pushes and pops dense with duplicate priorities (the
   heap's tie order among equal priorities is unspecified, so only
   the popped priorities are compared, not the payloads). *)
let prop_dqueue_order_matches_pqueue =
  QCheck.Test.make ~name:"dqueue priority order matches pqueue" ~count:200
    QCheck.(list (pair bool (int_bound 40)))
    (fun ops ->
      let dq = Dqueue.create () in
      let pq = Pqueue.create () in
      List.for_all
        (fun (is_push, key) ->
          if is_push then begin
            Dqueue.push dq key key;
            Pqueue.push pq (float_of_int key) key;
            Dqueue.length dq = Pqueue.length pq
          end
          else
            match (Dqueue.pop dq, Pqueue.pop pq) with
            | None, None -> true
            | Some (k, _), Some (p, _) -> float_of_int k = p
            | _ -> false)
        ops
      &&
      let rec drain () =
        match (Dqueue.pop dq, Pqueue.pop pq) with
        | None, None -> true
        | Some (k, _), Some (p, _) -> float_of_int k = p && drain ()
        | _ -> false
      in
      drain ())

(* ---------- Union_find ---------- *)

let test_uf_basic () =
  let uf = Union_find.create 5 in
  checki "initial sets" 5 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  checkb "0~1" true (Union_find.same uf 0 1);
  checkb "0!~2" false (Union_find.same uf 0 2);
  Union_find.union uf 1 2;
  checkb "0~3 transitively" true (Union_find.same uf 0 3);
  checki "sets" 2 (Union_find.count uf);
  Union_find.union uf 0 3;
  checki "idempotent union" 2 (Union_find.count uf)

(* ---------- Vec ---------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    checki "index" i (Vec.push v (i * 2))
  done;
  checki "length" 100 (Vec.length v);
  checki "get 50" 100 (Vec.get v 50);
  Vec.set v 50 7;
  checki "set" 7 (Vec.get v 50);
  check Alcotest.(option int) "pop" (Some 198) (Vec.pop v);
  checki "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  checki "fold" 10 (Vec.fold ( + ) 0 v);
  check Alcotest.(list int) "map" [ 2; 4; 6; 8 ] (Vec.to_list (Vec.map (fun x -> 2 * x) v));
  checkb "exists" true (Vec.exists (fun x -> x = 3) v);
  checkb "not exists" false (Vec.exists (fun x -> x = 9) v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  checki "iteri count" 4 (List.length !acc)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    checkb "in range" true (x >= 0 && x < 17);
    let f = Rng.float rng 3.5 in
    checkb "float range" true (f >= 0.0 && f < 3.5)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 99 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let rng = Rng.create 5 in
  let sub = Rng.split rng in
  let x = Rng.int rng 1000000 and y = Rng.int sub 1000000 in
  checkb "streams differ (overwhelmingly)" true (x <> y || Rng.int rng 10 >= 0);
  (* sub-stream independence: the first 10k raw draws of the parent
     and child streams share no 64-bit output — a splitmix64 child
     whose state re-entered the parent's orbit would collide *)
  let n = 10_000 in
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let seen = Hashtbl.create (4 * n) in
  for i = 1 to n do
    let v = Rng.bits64 parent in
    checkb
      (Printf.sprintf "parent draw %d fresh" i)
      false (Hashtbl.mem seen v);
    Hashtbl.replace seen v ()
  done;
  for i = 1 to n do
    let v = Rng.bits64 child in
    checkb
      (Printf.sprintf "child draw %d disjoint from parent" i)
      false (Hashtbl.mem seen v);
    Hashtbl.replace seen v ()
  done

(* ---------- Geom ---------- *)

let test_geom_overlap () =
  let a = Geom.rect 0.0 0.0 10.0 10.0 in
  let b = Geom.rect 10.0 0.0 20.0 10.0 in
  checkb "abutting do not overlap" false (Geom.overlaps a b);
  let c = Geom.rect 9.0 9.0 11.0 11.0 in
  checkb "overlap" true (Geom.overlaps a c);
  checkf "dist abutting" 0.0 (Geom.dist_rect a b);
  checkf "dist separated" 5.0 (Geom.dist_rect a (Geom.translate b 5.0 0.0))

let test_geom_ops () =
  let r = Geom.rect_of_size ~x:10.0 ~y:20.0 ~w:30.0 ~h:40.0 in
  checkf "width" 30.0 (Geom.width r);
  checkf "height" 40.0 (Geom.height r);
  checkf "area" 1200.0 (Geom.area r);
  let c = Geom.center r in
  checkf "cx" 25.0 c.Geom.x;
  checkf "cy" 40.0 c.Geom.y;
  checkb "contains center" true (Geom.contains r c);
  let u = Geom.union_rect r (Geom.rect 0.0 0.0 5.0 5.0) in
  checkf "union lx" 0.0 u.Geom.lx;
  checkf "union hx" 40.0 u.Geom.hx;
  (match Geom.intersection r (Geom.rect 20.0 30.0 100.0 100.0) with
  | Some i ->
      checkf "ix" 20.0 i.Geom.lx;
      checkf "iy" 30.0 i.Geom.ly
  | None -> Alcotest.fail "expected intersection");
  check Alcotest.(option reject) "disjoint intersection"
    None
    (Option.map (fun _ -> ()) (Geom.intersection r (Geom.rect 100.0 100.0 110.0 110.0)))

let test_geom_invalid () =
  Alcotest.check_raises "negative extent" (Invalid_argument "Geom.rect: negative extent")
    (fun () -> ignore (Geom.rect 10.0 0.0 0.0 10.0))

let test_geom_spacing () =
  let a = Geom.rect 0.0 0.0 10.0 10.0 in
  let b = Geom.rect 25.0 0.0 30.0 10.0 in
  checkf "spacing_x" 15.0 (Geom.spacing_x a b);
  checkf "spacing_x symmetric" 15.0 (Geom.spacing_x b a)

(* ---------- Stats ---------- *)

let test_stats () =
  checkf "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  checkf "sum" 10.0 (Stats.sum [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "min" 1.0 (Stats.minimum [| 3.0; 1.0; 2.0 |]);
  checkf "max" 3.0 (Stats.maximum [| 3.0; 1.0; 2.0 |]);
  checkf "ratio geomean identity" 1.0
    (Stats.ratio_geomean [| 2.0; 4.0 |] [| 2.0; 4.0 |]);
  checkf "percentile median" 2.0 (Stats.percentile [| 1.0; 2.0; 3.0 |] 50.0);
  checkf "stddev" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |])

(* ---------- Table ---------- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  loop 0

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  checkb "contains alpha" true (contains_sub s "alpha");
  checkb "contains header" true (contains_sub s "value");
  (* all lines share the same width *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  checkb "uniform width" true (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_formats () =
  check Alcotest.string "fmt_int" "12,345" (Table.fmt_int 12345);
  check Alcotest.string "fmt_int small" "7" (Table.fmt_int 7);
  check Alcotest.string "fmt_int negative" "-1,000" (Table.fmt_int (-1000));
  check Alcotest.string "fmt_float" "3.1" (Table.fmt_float 3.14159);
  check Alcotest.string "fmt_float dec" "3.142" (Table.fmt_float ~dec:3 3.14159)

(* ---------- Diag JSON escaping ---------- *)

(* inverse of [Diag.json_escape] for the round-trip property: every
   [\u00XX] escape denotes exactly one raw input byte *)
let json_unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then (
       match s.[!i + 1] with
       | '"' -> Buffer.add_char buf '"'; incr i
       | '\\' -> Buffer.add_char buf '\\'; incr i
       | 'n' -> Buffer.add_char buf '\n'; incr i
       | 't' -> Buffer.add_char buf '\t'; incr i
       | 'r' -> Buffer.add_char buf '\r'; incr i
       | 'b' -> Buffer.add_char buf '\b'; incr i
       | 'f' -> Buffer.add_char buf '\012'; incr i
       | 'u' ->
           let code = int_of_string ("0x" ^ String.sub s (!i + 2) 4) in
           Buffer.add_char buf (Char.chr code);
           i := !i + 5
       | c -> Buffer.add_char buf c; incr i)
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let test_json_escape_units () =
  check Alcotest.string "quote" "a\\\"b" (Diag.json_escape "a\"b");
  check Alcotest.string "backslash" "a\\\\b" (Diag.json_escape "a\\b");
  check Alcotest.string "newline" "a\\nb" (Diag.json_escape "a\nb");
  check Alcotest.string "cr" "a\\rb" (Diag.json_escape "a\rb");
  check Alcotest.string "formfeed" "a\\fb" (Diag.json_escape "a\012b");
  check Alcotest.string "nul" "\\u0000" (Diag.json_escape "\000");
  check Alcotest.string "del" "\\u007f" (Diag.json_escape "\127");
  (* well-formed UTF-8 passes through verbatim *)
  check Alcotest.string "2-byte utf8" "h\xc3\xa9llo" (Diag.json_escape "h\xc3\xa9llo");
  check Alcotest.string "4-byte utf8" "\xf0\x9f\x99\x82" (Diag.json_escape "\xf0\x9f\x99\x82");
  (* ill-formed bytes escape individually *)
  check Alcotest.string "lone 0xff" "\\u00ff" (Diag.json_escape "\xff");
  check Alcotest.string "truncated lead" "\\u00c3" (Diag.json_escape "\xc3");
  check Alcotest.string "bare continuation" "\\u0080" (Diag.json_escape "\x80");
  check Alcotest.string "overlong" "\\u00c0\\u00af" (Diag.json_escape "\xc0\xaf");
  check Alcotest.string "surrogate" "\\u00ed\\u00a0\\u0080" (Diag.json_escape "\xed\xa0\x80")

let prop_json_escape_roundtrip =
  QCheck.Test.make ~name:"json_escape round-trips arbitrary bytes" ~count:1000
    QCheck.string
    (fun s -> json_unescape (Diag.json_escape s) = s)

let prop_json_escape_clean =
  QCheck.Test.make ~name:"json_escape output has no raw control/quote bytes"
    ~count:1000 QCheck.string (fun s ->
      let out = Diag.json_escape s in
      let ok = ref true in
      String.iteri
        (fun i c ->
          if Char.code c < 0x20 || Char.code c = 0x7f then ok := false;
          if c = '"' && (i = 0 || out.[i - 1] <> '\\') then ok := false)
        out;
      !ok)

let prop_json_escape_diag_line =
  QCheck.Test.make ~name:"to_json with arbitrary witness stays one line"
    ~count:500 QCheck.string (fun s ->
      let d = Diag.error ~witness:[ s ] ~rule:"TEST-JSON-01" Diag.Global "m" in
      not (String.contains (Diag.to_json d) '\n'))

let () =
  Alcotest.run "sf_util"
    [
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "duplicates" `Quick test_pqueue_duplicates;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          QCheck_alcotest.to_alcotest prop_pqueue_sorts;
        ] );
      ( "dqueue",
        [
          Alcotest.test_case "basic" `Quick test_dqueue_basic;
          QCheck_alcotest.to_alcotest prop_dqueue_matches_model;
          QCheck_alcotest.to_alcotest prop_dqueue_order_matches_pqueue;
        ] );
      ("union_find", [ Alcotest.test_case "basic" `Quick test_uf_basic ]);
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "geom",
        [
          Alcotest.test_case "overlap" `Quick test_geom_overlap;
          Alcotest.test_case "ops" `Quick test_geom_ops;
          Alcotest.test_case "invalid" `Quick test_geom_invalid;
          Alcotest.test_case "spacing" `Quick test_geom_spacing;
        ] );
      ("stats", [ Alcotest.test_case "summaries" `Quick test_stats ]);
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "diag_json",
        [
          Alcotest.test_case "escape units" `Quick test_json_escape_units;
          QCheck_alcotest.to_alcotest prop_json_escape_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_escape_clean;
          QCheck_alcotest.to_alcotest prop_json_escape_diag_line;
        ] );
    ]
